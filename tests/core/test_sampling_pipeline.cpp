// The asynchronous sampling pipeline: SPSC ring unit behaviour, async
// histogram convergence against the synchronous baseline, drop
// accounting under tiny rings, overflow reconfiguration across runs,
// and the handler-lifetime regressions (clear_overflow while running
// used to leave the armed substrate callback dereferencing freed
// storage — these tests fail under ASan on the old code).
//
// All test names start with "Sampling" so the TSan CI job's filter
// picks them up.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/eventset.h"
#include "core/profile.h"
#include "core/sample_ring.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::AllocationGuard;
using papirepro::test::SimFixture;

TEST(SamplingRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SampleRing(1).capacity(), SampleRing::kMinCapacity);
  EXPECT_EQ(SampleRing(7).capacity(), 8u);
  EXPECT_EQ(SampleRing(8).capacity(), 8u);
  EXPECT_EQ(SampleRing(1000).capacity(), 1024u);
}

TEST(SamplingRing, FifoOrderAndCounters) {
  SampleRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.try_push(SampleRecord{.pc_observed = i}));
  }
  EXPECT_EQ(ring.size(), 5u);
  SampleRecord out;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.pc_observed, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SamplingRing, FullRingDropsAndAccounts) {
  SampleRing ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(SampleRecord{}));
  }
  EXPECT_FALSE(ring.try_push(SampleRecord{}));
  EXPECT_FALSE(ring.try_push(SampleRecord{}));
  EXPECT_EQ(ring.pushed(), 8u);
  EXPECT_EQ(ring.dropped(), 2u);
  // Popping frees a slot; the producer recovers.
  SampleRecord out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(SampleRecord{}));
}

TEST(SamplingRing, EnqueueAndDrainAreAllocationFree) {
  SampleRing ring(64);
  SampleRecord out;
  AllocationGuard guard;
  for (int i = 0; i < 1000; ++i) {
    ring.try_push(SampleRecord{.pc_observed = static_cast<std::uint64_t>(i)});
    if (i % 2 == 0) ring.try_pop(out);
  }
  while (ring.try_pop(out)) {
  }
  EXPECT_EQ(guard.delta(), 0u);
}

TEST(SamplingPipeline, AsyncHandlerDispatchMatchesSync) {
  // Same deterministic workload twice: handler fire counts must agree
  // between synchronous dispatch and the ring + aggregator.
  const auto run_once = [](bool async) {
    SimFixture f(sim::make_saxpy(10'000), pmu::sim_power3(),
                 {.charge_costs = false});
    ASSERT_TRUE(
        f.library->configure_sampling({.async = async}).ok())
        << "configure";
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
    std::atomic<int> fires{0};
    ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kFmaIns), 1000,
                                 [&](EventSet&, const OverflowEvent& ev) {
                                   EXPECT_EQ(ev.event, EventId::preset(
                                                           Preset::kFmaIns));
                                   fires.fetch_add(1);
                                 })
                    .ok());
    ASSERT_TRUE(set.start().ok());
    EXPECT_EQ(set.async_sampling_active(), async);
    f.machine->run();
    // stop() drains the ring synchronously: every enqueued sample has
    // dispatched by the time it returns.
    ASSERT_TRUE(set.stop().ok());
    EXPECT_EQ(fires.load(), 10);
    if (async) {
      const SamplingStats stats = f.library->sampling_stats();
      EXPECT_EQ(stats.enqueued, 10u);
      EXPECT_EQ(stats.dispatched, 10u);
      EXPECT_EQ(stats.dropped, 0u);
      EXPECT_EQ(stats.rings_active, 0u);  // detached at stop()
    }
  };
  run_once(false);
  run_once(true);
}

TEST(SamplingPipeline, AsyncHistogramConvergesToSyncBaseline) {
  // The acceptance criterion: with a roomy ring (no drops possible) the
  // async histogram is bit-identical to the synchronous baseline — the
  // pipeline reorders work in time, not in content.
  const auto profile_run = [](bool async, ProfileBuffer& buf) {
    SimFixture f(sim::make_saxpy(50'000), pmu::sim_power3(),
                 {.charge_costs = false});
    ASSERT_TRUE(f.library
                    ->configure_sampling(
                        {.async = async, .ring_capacity = 1u << 16})
                    .ok());
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
    ASSERT_TRUE(
        set.profil(buf, EventId::preset(Preset::kTotIns), 500).ok());
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    ASSERT_TRUE(set.stop().ok());
  };

  ProfileBuffer sync_buf(sim::kTextBase, 4096);
  profile_run(false, sync_buf);
  ProfileBuffer async_buf(sim::kTextBase, 4096);
  profile_run(true, async_buf);

  ASSERT_GT(sync_buf.total_samples(), 500u);
  EXPECT_EQ(async_buf.total_samples(), sync_buf.total_samples());
  EXPECT_EQ(async_buf.buckets(), sync_buf.buckets());
}

TEST(SamplingPipeline, TinyRingDropsAreAccounted) {
  // Graceful degradation: a ring the aggregator cannot keep up with
  // drops samples but never loses track of how many.  The sync baseline
  // gives the true sample count; async total + accounted drops must
  // reproduce it exactly.
  ProfileBuffer sync_buf(sim::kTextBase, 4096);
  {
    SimFixture f(sim::make_saxpy(50'000), pmu::sim_power3(),
                 {.charge_costs = false});
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
    ASSERT_TRUE(
        set.profil(sync_buf, EventId::preset(Preset::kTotIns), 100).ok());
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    ASSERT_TRUE(set.stop().ok());
  }

  SimFixture f(sim::make_saxpy(50'000), pmu::sim_power3(),
               {.charge_costs = false});
  // Minimum-size ring, sleepy aggregator: drops are inevitable while
  // the machine floods thousands of samples between sweeps.
  ASSERT_TRUE(f.library
                  ->configure_sampling({.async = true,
                                        .ring_capacity = 8,
                                        .poll_interval_us = 500'000})
                  .ok());
  ProfileBuffer async_buf(sim::kTextBase, 4096);
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(
      set.profil(async_buf, EventId::preset(Preset::kTotIns), 100).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());

  const SamplingStats stats = f.library->sampling_stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.enqueued, async_buf.total_samples());
  EXPECT_EQ(stats.enqueued + stats.dropped, sync_buf.total_samples());
}

TEST(SamplingPipeline, ReconfigurationAcrossStartStopCycles) {
  // set -> run -> clear -> run -> re-set -> run on ONE EventSet, in
  // both delivery modes: each phase dispatches exactly its own
  // configuration, and a cleared handler stays cleared.
  for (const bool async : {false, true}) {
    SimFixture f(sim::make_saxpy(30'000), pmu::sim_power3(),
                 {.charge_costs = false});
    ASSERT_TRUE(f.library->configure_sampling({.async = async}).ok());
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());

    std::atomic<int> first{0};
    ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kFmaIns), 1000,
                                 [&](EventSet&, const OverflowEvent&) {
                                   first.fetch_add(1);
                                 })
                    .ok());
    ASSERT_TRUE(set.start().ok());
    f.machine->run(80'000);
    ASSERT_TRUE(set.stop().ok());
    const int phase1 = first.load();
    EXPECT_GT(phase1, 0) << "async=" << async;

    ASSERT_TRUE(
        set.clear_overflow(EventId::preset(Preset::kFmaIns)).ok());
    ASSERT_TRUE(set.start().ok());
    f.machine->run(80'000);
    ASSERT_TRUE(set.stop().ok());
    EXPECT_EQ(first.load(), phase1) << "cleared handler refired";

    std::atomic<int> second{0};
    ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kFmaIns), 2000,
                                 [&](EventSet&, const OverflowEvent&) {
                                   second.fetch_add(1);
                                 })
                    .ok());
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    ASSERT_TRUE(set.stop().ok());
    EXPECT_EQ(first.load(), phase1) << "old handler leaked into new run";
    EXPECT_GT(second.load(), 0) << "async=" << async;
  }
}

TEST(SamplingPipeline, ClearOverflowWhileRunningStopsDispatch) {
  // The headline lifetime bug: clear_overflow() used to erase the
  // config while the substrate stayed armed, so the next interrupt
  // dereferenced the destroyed handler (heap-use-after-free under
  // ASan).  Now the substrate is disarmed first; the count freezes.
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  std::atomic<int> fires{0};
  // Heap-allocated capture state so a stale dispatch is a *detectable*
  // use-after-free, not a silent read of recycled stack memory.
  auto big = std::vector<int>(64, 7);
  ASSERT_TRUE(set.set_overflow(
                     EventId::preset(Preset::kFmaIns), 1000,
                     [&fires, big](EventSet&, const OverflowEvent&) {
                       fires.fetch_add(1 + (big[0] - 7));
                     })
                  .ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run(45'000);  // ~5 of the 10 total overflows
  const int at_clear = fires.load();
  EXPECT_GT(at_clear, 0);
  EXPECT_LT(at_clear, 10);
  ASSERT_TRUE(set.clear_overflow(EventId::preset(Preset::kFmaIns)).ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  EXPECT_EQ(fires.load(), at_clear);
}

TEST(SamplingPipeline, ProfilStopWhileRunningStopsRecording) {
  // profil_stop mid-run: the buffer must freeze (the old code kept the
  // armed callback recording into it for the rest of the run).
  SimFixture f(sim::make_saxpy(20'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ProfileBuffer buf(sim::kTextBase, 4096);
  ASSERT_TRUE(
      set.profil(buf, EventId::preset(Preset::kTotIns), 500).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run(60'000);
  ASSERT_TRUE(set.profil_stop(EventId::preset(Preset::kTotIns)).ok());
  const std::uint64_t at_stop = buf.total_samples();
  EXPECT_GT(at_stop, 0u);
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  EXPECT_EQ(buf.total_samples(), at_stop);
}

TEST(SamplingPipeline, DeferredDeliveryChargesEnqueueCostOnly) {
  // The cost asymmetry behind the paper's sampling-vs-counting gap:
  // deferred delivery charges the counting thread the trap-plus-enqueue
  // price, not the full handler.
  const auto overhead = [](bool async) {
    SimFixture f(sim::make_saxpy(20'000), pmu::sim_power3());
    EXPECT_TRUE(f.library->configure_sampling({.async = async}).ok());
    ProfileBuffer buf(sim::kTextBase, 4096);
    EventSet& set = f.new_set();
    EXPECT_TRUE(set.add_preset(Preset::kTotIns).ok());
    EXPECT_TRUE(
        set.profil(buf, EventId::preset(Preset::kTotIns), 1000).ok());
    EXPECT_TRUE(set.start().ok());
    f.machine->run();
    EXPECT_TRUE(set.stop().ok());
    EXPECT_GT(buf.total_samples(), 100u);
    return std::pair(f.machine->overhead_cycles(), buf.total_samples());
  };
  const auto [sync_cycles, sync_samples] = overhead(false);
  const auto [async_cycles, async_samples] = overhead(true);
  const auto& costs = pmu::sim_power3().costs;
  EXPECT_GE(sync_cycles,
            sync_samples * costs.overflow_handler_cost_cycles);
  EXPECT_GE(async_cycles,
            async_samples * costs.overflow_enqueue_cost_cycles);
  EXPECT_LT(async_cycles, sync_cycles / 2);
}

TEST(SamplingPipeline, LibraryConfigValidation) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_power3());
  EXPECT_EQ(f.library
                ->configure_sampling(
                    {.async = true,
                     .ring_capacity = SampleRing::kMaxCapacity * 2})
                .error(),
            Error::kInvalid);
  EXPECT_TRUE(f.library
                  ->configure_sampling({.async = true, .ring_capacity = 0})
                  .ok());
  EXPECT_EQ(f.library->sampling().config().ring_capacity, 1024u);
}

}  // namespace
}  // namespace papirepro::papi
