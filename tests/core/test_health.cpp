// Component health monitor: the circuit breaker between the retry layer
// and the substrates.  Covers the state machine in isolation, the
// fail-fast quarantine path (no retry/backoff burned against a dead
// component), partial-failure reads over a spanning EventSet (healthy
// slices keep delivering while a quarantined slice reports last latched
// values), the non-monotonic-counter sanity guard, and the lazy
// probe-on-next-op recovery back to Healthy.  Fault schedules come from
// the deterministic FaultInjectingSubstrate, so every transition in
// these tests happens at an exact operation number.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/health.h"
#include "core/library.h"
#include "substrate/component_substrates.h"
#include "substrate/fault_substrate.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::FaultFixture;
using papirepro::test::SimFixture;

// ---- state machine in isolation ----------------------------------------

TEST(HealthStateMachine, ConsecutiveExhaustionsTripAndProbeRecovers) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  HealthMonitor m;
  m.bind(nullptr, f.substrate, 5);
  HealthPolicy p;
  p.max_consecutive_exhaustions = 2;
  p.window_min_ops = 0;  // isolate the consecutive-streak condition
  p.probe_cooldown_usec = 0;
  p.probe_cooldown_max_usec = 0;
  p.probation_successes = 2;
  m.set_policy(p);

  EXPECT_EQ(m.state(), HealthState::kHealthy);
  EXPECT_TRUE(m.admit().ok());

  m.record(Error::kConflict);  // first retry-exhausted transient
  EXPECT_EQ(m.state(), HealthState::kDegraded);
  EXPECT_TRUE(m.admit().ok());  // Degraded still admits

  m.record(Error::kConflict);  // second: streak reaches the trip point
  EXPECT_EQ(m.state(), HealthState::kQuarantined);
  EXPECT_EQ(m.snapshot().quarantines, 1u);
  EXPECT_EQ(m.snapshot().last_error, Error::kConflict);

  // Cool-down of zero: the next admit flips straight to Probation.
  EXPECT_TRUE(m.admit().ok());
  EXPECT_EQ(m.state(), HealthState::kProbation);
  m.record(Error::kOk);  // probe 1 of 2
  EXPECT_EQ(m.state(), HealthState::kProbation);
  EXPECT_TRUE(m.admit().ok());
  m.record(Error::kOk);  // probe 2 of 2: back in service
  EXPECT_EQ(m.state(), HealthState::kHealthy);
  const ComponentHealth h = m.snapshot();
  EXPECT_EQ(h.consecutive_exhaustions, 0u);
  EXPECT_EQ(h.window_ops, 0u);
  EXPECT_GE(h.probes, 2u);
  // Healthy -> Degraded -> Quarantined -> Probation -> Healthy.
  EXPECT_EQ(h.transitions, 4u);
}

TEST(HealthStateMachine, WindowFailureRateTripsWithoutAStreak) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  HealthMonitor m;
  m.bind(nullptr, f.substrate, 1);
  HealthPolicy p;
  p.max_consecutive_exhaustions = 1000;  // streak condition out of play
  p.window_min_ops = 8;
  p.failure_rate_threshold = 0.5;
  p.probe_cooldown_usec = 0;
  p.probe_cooldown_max_usec = 0;
  m.set_policy(p);

  // Alternating outcomes: the streak never exceeds one, but once eight
  // ops are in the window at half failures, the rate condition trips.
  m.record(Error::kConflict);
  m.record(Error::kOk);
  m.record(Error::kConflict);
  m.record(Error::kOk);
  m.record(Error::kConflict);
  m.record(Error::kOk);
  m.record(Error::kOk);
  EXPECT_EQ(m.state(), HealthState::kDegraded);
  m.record(Error::kConflict);  // op 8: 4/8 = 0.5 >= threshold
  EXPECT_EQ(m.state(), HealthState::kQuarantined);
}

TEST(HealthStateMachine, DeterministicErrorsNeverTripTheBreaker) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  HealthMonitor m;
  m.bind(nullptr, f.substrate, 0);
  HealthPolicy p;
  p.max_consecutive_exhaustions = 1;
  m.set_policy(p);
  // Non-transient outcomes (bad arguments, unsupported features) say
  // nothing about substrate health: no state change, however many.
  for (int i = 0; i < 20; ++i) {
    m.record(Error::kInvalid);
    m.record(Error::kNoSupport);
  }
  EXPECT_EQ(m.state(), HealthState::kHealthy);
  EXPECT_EQ(m.snapshot().last_error, Error::kNoSupport);
}

TEST(HealthStateMachine, DisabledPolicyAdmitsEverything) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  HealthMonitor m;
  m.bind(nullptr, f.substrate, 0);
  HealthPolicy p;
  p.enabled = false;
  p.max_consecutive_exhaustions = 1;
  m.set_policy(p);
  for (int i = 0; i < 10; ++i) m.record(Error::kConflict);
  EXPECT_EQ(m.state(), HealthState::kHealthy);
  EXPECT_TRUE(m.admit().ok());
}

TEST(HealthStateMachine, DegradedDrainsBackToHealthyOnCleanWindow) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  HealthMonitor m;
  m.bind(nullptr, f.substrate, 0);
  HealthPolicy p;
  p.max_consecutive_exhaustions = 4;
  p.window_min_ops = 4;
  p.failure_rate_threshold = 0.9;
  m.set_policy(p);
  m.record(Error::kConflict);
  EXPECT_EQ(m.state(), HealthState::kDegraded);
  // The last window_min_ops operations must all succeed to recover.
  m.record(Error::kOk);
  m.record(Error::kOk);
  m.record(Error::kOk);
  EXPECT_EQ(m.state(), HealthState::kDegraded);
  m.record(Error::kOk);
  EXPECT_EQ(m.state(), HealthState::kHealthy);
}

TEST(HealthStateMachine, ForceHealthyReopensImmediately) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  HealthMonitor m;
  m.bind(nullptr, f.substrate, 0);
  HealthPolicy p;
  p.max_consecutive_exhaustions = 1;
  p.probe_cooldown_usec = 1'000'000;
  p.probe_cooldown_max_usec = 1'000'000;
  m.set_policy(p);
  m.record(Error::kConflict);
  ASSERT_EQ(m.state(), HealthState::kQuarantined);
  m.force_healthy();
  EXPECT_EQ(m.state(), HealthState::kHealthy);
  EXPECT_TRUE(m.admit().ok());
  EXPECT_EQ(m.snapshot().cooldown_usec, 0u);
}

// ---- policy plumbing ----------------------------------------------------

TEST(HealthPolicyApi, LibraryValidatesAndAppliesPolicy) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  HealthPolicy p;
  p.failure_rate_threshold = 1.5;
  EXPECT_EQ(f.library->set_health_policy(p).error(), Error::kInvalid);
  p.failure_rate_threshold = -0.1;
  EXPECT_EQ(f.library->set_health_policy(p).error(), Error::kInvalid);
  p = HealthPolicy{};
  p.max_consecutive_exhaustions = 0;
  EXPECT_EQ(f.library->set_health_policy(p).error(), Error::kInvalid);
  p = HealthPolicy{};
  p.probation_successes = 0;
  EXPECT_EQ(f.library->set_health_policy(p).error(), Error::kInvalid);
  p = HealthPolicy{};
  p.probe_cooldown_usec = 100;
  p.probe_cooldown_max_usec = 50;  // cap below the base
  EXPECT_EQ(f.library->set_health_policy(p).error(), Error::kInvalid);

  p = HealthPolicy{};
  p.max_consecutive_exhaustions = 7;
  p.window_min_ops = 32;
  ASSERT_TRUE(f.library->set_health_policy(p).ok());
  const HealthPolicy got = f.library->health_policy();
  EXPECT_EQ(got.max_consecutive_exhaustions, 7u);
  EXPECT_EQ(got.window_min_ops, 32u);

  EXPECT_EQ(f.library->component_health(99).error(), Error::kNoComponent);
  const auto health = f.library->component_health(0);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().state, HealthState::kHealthy);
}

TEST(HealthPolicyApi, LateRegisteredComponentInheritsLibraryPolicy) {
  SimFixture f(sim::make_saxpy(4'000), pmu::sim_x86(),
               {.charge_costs = false});
  HealthPolicy p;
  p.max_consecutive_exhaustions = 1;  // hair trigger
  p.probe_cooldown_usec = 1'000'000;
  ASSERT_TRUE(f.library->set_health_policy(p).ok());

  // Registered *after* the policy change: the component must inherit it.
  FaultPlan plan;
  plan.at(FaultSite::kRead).fail_times = 1 << 20;
  auto wrapped = std::make_unique<FaultInjectingSubstrate>(
      std::make_unique<MemBandwidthSubstrate>(*f.machine), plan);
  const auto mem_id =
      f.library->register_component("mem", "x", std::move(wrapped));
  ASSERT_TRUE(mem_id.ok());

  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run(500);
  long long v[1] = {0};
  // One retry-exhausted read is enough under the inherited policy.
  EXPECT_FALSE(set.read({v, 1}).ok());
  EXPECT_EQ(f.library->component_health(mem_id.value()).value().state,
            HealthState::kQuarantined);
}

// ---- fail-fast: quarantine short-circuits the retry ladder --------------

TEST(HealthFailFast, QuarantinedComponentSkipsRetriesAndBackoff) {
  FaultPlan plan;
  plan.at(FaultSite::kRead).fail_times = 1 << 20;  // hard down
  FaultFixture f(sim::make_saxpy(8'000), pmu::sim_x86(), plan,
                 {.charge_costs = false});
  HealthPolicy p;
  p.max_consecutive_exhaustions = 2;
  p.probe_cooldown_usec = 1'000'000'000;  // effectively forever in sim time
  p.probe_cooldown_max_usec = 1'000'000'000;
  ASSERT_TRUE(f.library->set_health_policy(p).ok());

  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run(500);

  long long v[1] = {0};
  // Two reads exhaust their retry budgets (3 attempts each) and trip the
  // breaker; the original transient code surfaces both times.
  EXPECT_EQ(set.read({v, 1}).error(), Error::kConflict);
  EXPECT_EQ(set.read({v, 1}).error(), Error::kConflict);
  ASSERT_EQ(f.library->component_health(0).value().state,
            HealthState::kQuarantined);

  const std::uint64_t retries_at_trip =
      f.library->telemetry_snapshot().value(
          TelemetryCounter::kRetryAttempts);
  const std::uint64_t consults_at_trip =
      f.fault->call_count(FaultSite::kRead);

  // Fail-fast phase: rejected before the retry wrapper, so neither the
  // retry telemetry nor the substrate's call count moves — the op never
  // sleeps in backoff and never touches the dead component.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(set.read({v, 1}).error(), Error::kComponentQuarantined);
  }
  const TelemetrySnapshot snap = f.library->telemetry_snapshot();
  EXPECT_EQ(snap.value(TelemetryCounter::kRetryAttempts),
            retries_at_trip);
  EXPECT_EQ(f.fault->call_count(FaultSite::kRead), consults_at_trip);
  EXPECT_EQ(snap.value(TelemetryCounter::kHealthFailFasts), 5u);
  EXPECT_GE(snap.value(TelemetryCounter::kHealthTransitions), 2u);

  const ComponentHealth h = f.library->component_health(0).value();
  EXPECT_EQ(h.fail_fasts, 5u);
  EXPECT_EQ(h.quarantines, 1u);
  EXPECT_EQ(h.last_error, Error::kConflict);
}

// ---- spanning sets: partial-failure reads and end-to-end recovery -------

/// SimFixture plus a mem component whose substrate is wrapped in the
/// fault decorator: cpu:: is always healthy, mem:: fails on schedule.
struct FaultyMemFixture {
  SimFixture sim;
  FaultInjectingSubstrate* fault = nullptr;  // owned by library
  std::uint32_t mem_id = 0;

  FaultyMemFixture(std::int64_t n, const FaultPlan& plan)
      : sim(sim::make_saxpy(n), pmu::sim_x86(), {.charge_costs = false}) {
    auto wrapped = std::make_unique<FaultInjectingSubstrate>(
        std::make_unique<MemBandwidthSubstrate>(*sim.machine), plan);
    fault = wrapped.get();
    mem_id = sim.library
                 ->register_component("mem", "faulty uncore",
                                      std::move(wrapped))
                 .value();
  }
  Library& library() { return *sim.library; }
};

TEST(HealthRecovery, SpanningSetReadsThroughOutageAndSelfHeals) {
  FaultPlan plan;
  // Deterministic outage: the first mem read passes (latching good
  // values), the next six fail — exactly two retry-exhausted read ops
  // under the default 3-attempt budget — then the substrate recovers.
  plan.at(FaultSite::kRead).fail_after = 1;
  plan.at(FaultSite::kRead).fail_times = 6;
  FaultyMemFixture f(200'000, plan);

  HealthPolicy p;
  p.max_consecutive_exhaustions = 2;
  p.probe_cooldown_usec = 1;  // sim clock: frozen unless the machine runs
  p.probe_cooldown_max_usec = 1;
  p.probation_successes = 1;
  ASSERT_TRUE(f.library().set_health_policy(p).ok());

  EventSet& set = f.sim.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());
  ASSERT_TRUE(set.start().ok());

  std::vector<long long> v(2, -1);
  std::vector<std::uint32_t> flags(2, 99);

  // Read 1: everything healthy and fresh.
  f.sim.machine->run(3'000);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[0], read_flag::kValid);
  EXPECT_EQ(flags[1], read_flag::kValid);
  const long long cpu_1 = v[0];
  const long long mem_latched = v[1];
  EXPECT_GT(cpu_1, 0);

  // Read 2: mem slice exhausts its retries; the call still succeeds,
  // cpu delivers fresh values, mem reports the latched reading as stale.
  f.sim.machine->run(3'000);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[0], read_flag::kValid);
  EXPECT_GT(v[0], cpu_1);
  EXPECT_EQ(flags[1], read_flag::kStale);
  EXPECT_EQ(v[1], mem_latched);
  EXPECT_EQ(f.library().component_health(f.mem_id).value().state,
            HealthState::kDegraded);

  // Read 3: second exhaustion trips the breaker.
  f.sim.machine->run(3'000);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[1], read_flag::kStale);
  EXPECT_EQ(v[1], mem_latched);
  ASSERT_EQ(f.library().component_health(f.mem_id).value().state,
            HealthState::kQuarantined);

  // Read 4, inside the cool-down (the sim clock has not advanced since
  // the trip): mem fails fast without consulting the substrate, and the
  // flags say both "stale" and "quarantined".
  const std::uint64_t consults =
      f.fault->call_count(FaultSite::kRead);
  const std::uint64_t retries = f.library().telemetry_snapshot().value(
      TelemetryCounter::kRetryAttempts);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[0], read_flag::kValid);
  EXPECT_GT(v[0], 0);
  EXPECT_EQ(flags[1], read_flag::kStale | read_flag::kQuarantined);
  EXPECT_EQ(v[1], mem_latched);
  EXPECT_EQ(f.fault->call_count(FaultSite::kRead), consults);
  EXPECT_EQ(f.library().telemetry_snapshot().value(
                TelemetryCounter::kRetryAttempts),
            retries);
  EXPECT_GE(f.library().component_health(f.mem_id).value().fail_fasts,
            1u);

  // Advance simulated time past the cool-down.  Read 5 is admitted as a
  // probe; the fault script is exhausted, the probe succeeds, and the
  // component returns to Healthy in the same call.
  f.sim.machine->run(60'000);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[0], read_flag::kValid);
  EXPECT_EQ(flags[1], read_flag::kValid);
  EXPECT_GE(v[1], mem_latched);  // fresh reading again
  const ComponentHealth h =
      f.library().component_health(f.mem_id).value();
  EXPECT_EQ(h.state, HealthState::kHealthy);
  EXPECT_EQ(h.quarantines, 1u);
  EXPECT_GE(h.probes, 1u);
  EXPECT_GE(f.library().telemetry_snapshot().value(
                TelemetryCounter::kHealthProbes),
            1u);

  // Back in service end to end: plain read() works again.
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.stop(v).ok());
}

TEST(HealthRecovery, LegacyReadStillFailsWholeCallOnQuarantine) {
  // The classic all-or-nothing read() contract is unchanged: once the
  // mem component is quarantined, read() surfaces the health error
  // instead of silently delivering partial data.
  FaultPlan plan;
  plan.at(FaultSite::kRead).fail_times = 1 << 20;
  FaultyMemFixture f(20'000, plan);
  HealthPolicy p;
  p.max_consecutive_exhaustions = 1;
  p.probe_cooldown_usec = 1'000'000'000;
  p.probe_cooldown_max_usec = 1'000'000'000;
  ASSERT_TRUE(f.library().set_health_policy(p).ok());

  EventSet& set = f.sim.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());
  ASSERT_TRUE(set.start().ok());
  f.sim.machine->run(1'000);
  std::vector<long long> v(2, 0);
  EXPECT_EQ(set.read(v).error(), Error::kConflict);  // trips here
  EXPECT_EQ(set.read(v).error(), Error::kComponentQuarantined);

  // read_ex on the same set still serves the cpu slice.
  std::vector<std::uint32_t> flags(2, 0);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[0], read_flag::kValid);
  EXPECT_EQ(flags[1], read_flag::kStale | read_flag::kQuarantined);
}

TEST(HealthRecovery, ReadExValidatesSizesAndState) {
  SimFixture f(sim::make_saxpy(1'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  std::vector<long long> v;
  std::vector<std::uint32_t> flags(1, 0);
  EXPECT_EQ(set.read_ex(v, flags).error(), Error::kInvalid);  // out short
  v.resize(1);
  flags.clear();
  EXPECT_EQ(set.read_ex(v, flags).error(), Error::kInvalid);  // flags short
  flags.resize(1);
  EXPECT_EQ(set.read_ex(v, flags).error(), Error::kNotRunning);

  // After a clean run, post-stop read_ex returns the frozen snapshot
  // with valid flags.
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop(v).ok());
  const long long frozen = v[0];
  v[0] = -1;
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(v[0], frozen);
  EXPECT_EQ(flags[0], read_flag::kValid);
}

// ---- counter sanity guard ----------------------------------------------

TEST(HealthSanityGuard, NonMonotonicDeltaLatchesAndFlagsSuspect) {
  FaultPlan plan;
  // After two good reads, one read reports values rewound far below the
  // running total — an impossible backwards delta.
  plan.read_rewind_after = 2;
  plan.read_rewind_times = 1;
  plan.read_rewind_delta = 1'000'000'000ULL;
  FaultFixture f(sim::make_saxpy(50'000), pmu::sim_x86(), plan,
                 {.charge_costs = false});

  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.start().ok());

  std::vector<long long> v(1, 0);
  std::vector<std::uint32_t> flags(1, 0);
  f.machine->run(2'000);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[0], read_flag::kValid);
  f.machine->run(2'000);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[0], read_flag::kValid);
  const long long last_good = v[0];
  EXPECT_GT(last_good, 0);

  // The rewound read: the fold path refuses to move backwards — the
  // value holds at the last good reading and the event is flagged.
  f.machine->run(2'000);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(v[0], last_good);
  EXPECT_EQ(flags[0], read_flag::kSuspect);
  EXPECT_GE(f.library->telemetry_snapshot().value(
                TelemetryCounter::kSanityFaults),
            1u);

  // The counter comes back: values resume advancing, but the suspect
  // flag is sticky — totals crossed a discontinuity.
  f.machine->run(2'000);
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_GT(v[0], last_good);
  EXPECT_EQ(flags[0], read_flag::kSuspect);

  // reset() clears the verdict along with the counts.
  ASSERT_TRUE(set.reset().ok());
  ASSERT_TRUE(set.read_ex(v, flags).ok());
  EXPECT_EQ(flags[0], read_flag::kValid);
  ASSERT_TRUE(set.stop().ok());
}

}  // namespace
}  // namespace papirepro::papi
