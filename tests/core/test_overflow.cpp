#include <gtest/gtest.h>

#include "core/eventset.h"
#include "core/profile.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

TEST(Overflow, HandlerFiresPerThreshold) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  int fires = 0;
  ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kFmaIns), 1000,
                               [&](EventSet&, const OverflowEvent& ev) {
                                 EXPECT_EQ(ev.event,
                                           EventId::preset(Preset::kFmaIns));
                                 ++fires;
                               })
                  .ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  EXPECT_EQ(fires, 10);
}

TEST(Overflow, DerivedEventRejected) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFpOps).ok());  // derived on x86
  EXPECT_EQ(set.set_overflow(EventId::preset(Preset::kFpOps), 100,
                             [](EventSet&, const OverflowEvent&) {})
                .error(),
            Error::kInvalid);
}

TEST(Overflow, RequiresMemberEventAndValidArgs) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  EXPECT_EQ(set.set_overflow(EventId::preset(Preset::kTotCyc), 100,
                             [](EventSet&, const OverflowEvent&) {})
                .error(),
            Error::kNoEvent);
  EXPECT_EQ(set.set_overflow(EventId::preset(Preset::kTotIns), 0,
                             [](EventSet&, const OverflowEvent&) {})
                .error(),
            Error::kInvalid);
}

TEST(Overflow, ClearStopsDispatch) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  int fires = 0;
  ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kFmaIns), 1000,
                               [&](EventSet&, const OverflowEvent&) {
                                 ++fires;
                               })
                  .ok());
  ASSERT_TRUE(set.clear_overflow(EventId::preset(Preset::kFmaIns)).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  EXPECT_EQ(fires, 0);
}

TEST(Overflow, SkiddedPcDiffersFromPreciseOnOutOfOrder) {
  // sim-x86 has geometric skid with min 3: the delivered PC is never the
  // causing pointer-chase load.
  SimFixture f(sim::make_pointer_chase(1024, 60'000, 3), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kL1Dcm).ok());
  const std::uint64_t load_pc = sim::instr_address(3);
  int total = 0, observed_on_load = 0;
  ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kL1Dcm), 500,
                               [&](EventSet&, const OverflowEvent& ev) {
                                 ++total;
                                 EXPECT_FALSE(ev.has_precise);
                                 if (ev.pc_observed == load_pc) {
                                   ++observed_on_load;
                                 }
                               })
                  .ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  ASSERT_GT(total, 20);
  // The chase loop is 3 instructions; with skid >= 3 the delivered PC is
  // uniform-ish over the loop, so well under half land on the load.
  EXPECT_LT(static_cast<double>(observed_on_load) / total, 0.6);
}

TEST(Overflow, EarDeliversPreciseOnIa64) {
  SimFixture f(sim::make_pointer_chase(1024, 60'000, 3), pmu::sim_ia64(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kL1Dcm).ok());
  const std::uint64_t load_pc = sim::instr_address(3);
  int total = 0, precise_on_load = 0;
  ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kL1Dcm), 500,
                               [&](EventSet&, const OverflowEvent& ev) {
                                 ++total;
                                 EXPECT_TRUE(ev.has_precise);
                                 if (ev.pc_precise == load_pc) {
                                   ++precise_on_load;
                                 }
                               })
                  .ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  ASSERT_GT(total, 20);
  EXPECT_EQ(precise_on_load, total);
}

TEST(Profil, BucketsConcentrateOnHotLoop) {
  SimFixture f(sim::make_saxpy(50'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ProfileBuffer buf(sim::kTextBase,
                    f.workload.program.size() * sim::kInstrBytes);
  ASSERT_TRUE(
      set.profil(buf, EventId::preset(Preset::kTotIns), 500).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());

  EXPECT_GT(buf.total_samples(), 500u);
  // Nearly all samples land in the 8-instruction loop body (indices
  // 5..12), not the 5-instruction prologue.
  std::uint64_t loop_samples = 0;
  for (std::size_t b = 5; b <= 12 && b < buf.num_buckets(); ++b) {
    loop_samples += buf.buckets()[b];
  }
  EXPECT_GT(static_cast<double>(loop_samples) /
                static_cast<double>(buf.total_samples()),
            0.95);
}

TEST(Profil, StopProfilByClearing) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ProfileBuffer buf(sim::kTextBase, 4096);
  ASSERT_TRUE(
      set.profil(buf, EventId::preset(Preset::kTotIns), 500).ok());
  ASSERT_TRUE(set.profil_stop(EventId::preset(Preset::kTotIns)).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  EXPECT_EQ(buf.total_samples(), 0u);
}

TEST(Overflow, UserHandlerAndProfilCoexistOnDifferentEvents) {
  // One EventSet, two armed events: a user overflow handler on FMA and
  // SVR4 profiling on total instructions — both must dispatch.
  SimFixture f(sim::make_saxpy(20'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());

  int fma_fires = 0;
  ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kFmaIns), 2'000,
                               [&](EventSet&, const OverflowEvent&) {
                                 ++fma_fires;
                               })
                  .ok());
  ProfileBuffer buf(sim::kTextBase,
                    f.workload.program.size() * sim::kInstrBytes);
  ASSERT_TRUE(
      set.profil(buf, EventId::preset(Preset::kTotIns), 1'000).ok());

  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  EXPECT_EQ(fma_fires, 10);
  EXPECT_GE(buf.total_samples(), 150u);
}

TEST(Overflow, ReplacingHandlerKeepsSingleDispatch) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  int first = 0, second = 0;
  ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kFmaIns), 1'000,
                               [&](EventSet&, const OverflowEvent&) {
                                 ++first;
                               })
                  .ok());
  // Re-arm with a new handler: the old one must be fully replaced.
  ASSERT_TRUE(set.set_overflow(EventId::preset(Preset::kFmaIns), 1'000,
                               [&](EventSet&, const OverflowEvent&) {
                                 ++second;
                               })
                  .ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 10);
}

TEST(Profil, OverflowHandlerChargesCost) {
  // Interrupt-driven profiling is not free: each overflow charges the
  // handler cost ("The cost of processing counter overflow interrupts
  // can be a significant source of overhead in sampling-based
  // profiling").
  SimFixture f(sim::make_saxpy(20'000), pmu::sim_power3());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ProfileBuffer buf(sim::kTextBase, 4096);
  ASSERT_TRUE(
      set.profil(buf, EventId::preset(Preset::kTotIns), 1000).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  EXPECT_GE(f.machine->overhead_cycles(),
            buf.total_samples() *
                pmu::sim_power3().costs.overflow_handler_cost_cycles);
}

}  // namespace
}  // namespace papirepro::papi
