#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace papirepro {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.error(), Error::kOk);
}

TEST(Status, CarriesError) {
  Status s(Error::kConflict);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), Error::kConflict);
  EXPECT_NE(s.message().find("conflict"), std::string_view::npos);
}

TEST(Status, EveryErrorHasAMessage) {
  for (int code = 0; code >= -19; --code) {
    const auto e = static_cast<Error>(code);
    EXPECT_FALSE(to_string(e).empty());
  }
}

TEST(ResultT, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.error(), Error::kOk);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultT, HoldsError) {
  Result<int> r(Error::kNoEvent);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Error::kNoEvent);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultT, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(ResultT, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Error::kSystem; };
  auto wrapper = [&]() -> Status {
    PAPIREPRO_RETURN_IF_ERROR(fails());
    return Error::kOk;
  };
  EXPECT_EQ(wrapper().error(), Error::kSystem);

  auto result_wrapper = [&]() -> Result<int> {
    PAPIREPRO_RETURN_IF_ERROR(fails());
    return 1;
  };
  EXPECT_EQ(result_wrapper().error(), Error::kSystem);
}

}  // namespace
}  // namespace papirepro
