#include "core/library.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

TEST(Library, EventNameRoundTrips) {
  SimFixture f(sim::make_saxpy(10), pmu::sim_x86());
  // Preset by name.
  auto id = f.library->event_from_name("PAPI_TOT_CYC");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(id.value().is_preset());
  EXPECT_EQ(f.library->event_name(id.value()).value(), "PAPI_TOT_CYC");
  // Native by name.
  auto native = f.library->event_from_name("L1D_MISS");
  ASSERT_TRUE(native.ok());
  EXPECT_FALSE(native.value().is_preset());
  EXPECT_EQ(f.library->event_name(native.value()).value(), "L1D_MISS");
  // Unknown.
  EXPECT_EQ(f.library->event_from_name("PAPI_BOGUS").error(),
            Error::kNoEvent);
}

TEST(Library, UnmappedPresetNameRejected) {
  // PAPI_FDV_INS exists as a preset but is unmapped on sim-x86: looking
  // it up by name must fail the platform query, not return a dangling id.
  SimFixture f(sim::make_saxpy(10), pmu::sim_x86());
  EXPECT_EQ(f.library->event_from_name("PAPI_FDV_INS").error(),
            Error::kNoEvent);
  EXPECT_FALSE(
      f.library->query_event(EventId::preset(Preset::kFdvIns)));
}

TEST(Library, EventDescriptions) {
  SimFixture f(sim::make_saxpy(10), pmu::sim_x86());
  auto preset_desc =
      f.library->event_description(EventId::preset(Preset::kTotCyc));
  ASSERT_TRUE(preset_desc.ok());
  EXPECT_FALSE(preset_desc.value().empty());
  const auto native = f.library->event_from_name("L1D_MISS").value();
  auto native_desc = f.library->event_description(native);
  ASSERT_TRUE(native_desc.ok());
  EXPECT_NE(native_desc.value().find("L1"), std::string::npos);
}

TEST(Library, HandleLifecycle) {
  SimFixture f(sim::make_saxpy(10), pmu::sim_x86());
  auto h1 = f.library->create_event_set();
  auto h2 = f.library->create_event_set();
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_NE(h1.value(), h2.value());
  EXPECT_EQ(f.library->num_event_sets(), 2u);
  EXPECT_TRUE(f.library->destroy_event_set(h1.value()).ok());
  EXPECT_EQ(f.library->num_event_sets(), 1u);
  EXPECT_EQ(f.library->event_set(h1.value()).error(), Error::kNoEventSet);
  EXPECT_EQ(f.library->destroy_event_set(h1.value()).error(),
            Error::kNoEventSet);
  EXPECT_TRUE(f.library->event_set(h2.value()).ok());
}

TEST(Library, AvailablePresetsConsistentWithQuery) {
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    SimFixture f(sim::make_saxpy(10), *p);
    const auto available = f.library->available_presets();
    EXPECT_FALSE(available.empty()) << p->name;
    for (Preset preset : available) {
      EXPECT_TRUE(f.library->query_event(EventId::preset(preset)))
          << p->name << " " << preset_name(preset);
    }
  }
}

TEST(Library, DestructorStopsRunningSet) {
  // A Library torn down mid-count must stop the hardware cleanly.
  sim::Workload w = sim::make_saxpy(1'000);
  sim::Machine machine(w.program, pmu::sim_x86().machine);
  w.setup(machine);
  {
    auto library = std::make_unique<Library>(
        std::make_unique<SimSubstrate>(machine, pmu::sim_x86()));
    auto handle = library->create_event_set();
    EventSet* set = library->event_set(handle.value()).value();
    ASSERT_TRUE(set->add_preset(Preset::kTotIns).ok());
    ASSERT_TRUE(set->start().ok());
    // library destroyed while running
  }
  machine.run();  // must not crash into a dangling listener
  SUCCEED();
}

TEST(Library, DestroyedHandlesAreReused) {
  // Long-running callers (a daemon creating and destroying one EventSet
  // per measurement) must not march the handle space toward exhaustion:
  // freed handles are recycled.
  SimFixture f(sim::make_saxpy(10), pmu::sim_x86());
  const int h1 = f.library->create_event_set().value();
  const int h2 = f.library->create_event_set().value();
  ASSERT_TRUE(f.library->destroy_event_set(h1).ok());
  const int h3 = f.library->create_event_set().value();
  EXPECT_EQ(h3, h1);  // recycled, not a fresh number
  ASSERT_TRUE(f.library->destroy_event_set(h2).ok());
  ASSERT_TRUE(f.library->destroy_event_set(h3).ok());
  // Churn never grows the handle values once a free one exists.
  for (int i = 0; i < 100; ++i) {
    const int h = f.library->create_event_set().value();
    EXPECT_LE(h, h2);
    ASSERT_TRUE(f.library->destroy_event_set(h).ok());
  }
}

TEST(Library, DestroyRunningSetRefused) {
  SimFixture f(sim::make_saxpy(1'000), pmu::sim_x86());
  const int h = f.library->create_event_set().value();
  EventSet* set = f.library->event_set(h).value();
  ASSERT_TRUE(set->add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set->start().ok());
  EXPECT_EQ(f.library->destroy_event_set(h).error(), Error::kIsRunning);
  ASSERT_TRUE(set->stop().ok());
  EXPECT_TRUE(f.library->destroy_event_set(h).ok());
}

TEST(Library, TimerPassthroughs) {
  SimFixture f(sim::make_empty_loop(10'000), pmu::sim_power3());
  EXPECT_EQ(f.library->real_cycles(), 0u);
  f.machine->run();
  EXPECT_EQ(f.library->real_cycles(), f.machine->cycles());
  EXPECT_EQ(f.library->virt_usec(), f.library->real_usec());
  auto mem = f.library->memory_info();
  ASSERT_TRUE(mem.ok());
  EXPECT_GT(mem.value().total_bytes, 0u);
}

}  // namespace
}  // namespace papirepro::papi
