// Zero-allocation guarantees on the steady-state counter hot paths.
// Every scratch buffer (raw snapshots, mux live-slice reads, accum
// intermediates, the stop() snapshot) is sized by preallocate_scratch()
// at start(), so read()/accum()/stop() and multiplex slice rotation must
// not touch the heap once counting is under way.  These tests pin that
// property with the operator-new counting hook from alloc_hook.cpp —
// the regression they guard is exactly the per-call vector churn this
// repo's hot paths used to pay.
#include <vector>

#include <gtest/gtest.h>

#include "core/eventset.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::AllocationGuard;
using papirepro::test::FaultFixture;
using papirepro::test::SimFixture;

constexpr int kWarmup = 64;
constexpr int kIters = 2000;

/// Warms `op` (so lazily-sized capacity fills outside the measured
/// region), then returns how many heap allocations `iters` calls made.
template <typename Op>
std::uint64_t allocations_over(int iters, Op&& op) {
  for (int i = 0; i < kWarmup; ++i) op();
  AllocationGuard guard;
  for (int i = 0; i < iters; ++i) op();
  return guard.delta();
}

TEST(HotPathAlloc, DirectReadAndAccumAllocationFree) {
  SimFixture f(sim::make_empty_loop(10), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(set.start().ok());

  std::vector<long long> v(set.num_events());
  EXPECT_EQ(allocations_over(kIters, [&] { (void)set.read(v); }), 0u);
  EXPECT_EQ(allocations_over(kIters, [&] { (void)set.accum(v); }), 0u);
  EXPECT_TRUE(set.stop().ok());
}

TEST(HotPathAlloc, FoldedNarrowCounterReadAllocationFree) {
  // 24-bit counters through the fault decorator: every read runs the
  // wraparound-folding loop on top of the decorated read.
  FaultPlan plan;
  plan.counter_width_bits = 24;
  FaultFixture f(sim::make_empty_loop(10), pmu::sim_x86(), plan,
                 {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(set.start().ok());

  std::vector<long long> v(set.num_events());
  EXPECT_EQ(allocations_over(kIters, [&] { (void)set.read(v); }), 0u);
  EXPECT_TRUE(set.stop().ok());
}

TEST(HotPathAlloc, MultiplexedReadAndAccumAllocationFree) {
  // Timer-driven multiplexing over a real workload; after the run the
  // estimation reads (scale-up over every group) must be heap-free.
  SimFixture f(sim::make_saxpy(50'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(/*slice_cycles=*/20'000).ok());
  for (const char* name : {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                           "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_L1_DCA"}) {
    ASSERT_TRUE(set.add_named(name).ok()) << name;
  }
  ASSERT_TRUE(set.start().ok());
  f.machine->run();  // rotate through every group at least once

  std::vector<long long> v(set.num_events());
  EXPECT_EQ(allocations_over(kIters, [&] { (void)set.read(v); }), 0u);
  EXPECT_EQ(allocations_over(kIters, [&] { (void)set.accum(v); }), 0u);
  EXPECT_TRUE(set.stop().ok());
}

TEST(HotPathAlloc, SequentialMuxRotationAllocationFree) {
  // Timer service scripted to fail -> degradation::kMuxSequential, so
  // every read() drives a full rotate_mux(): close the slice, read it,
  // reprogram the next group, restart.  The rotation itself is the
  // hottest reallocation risk (it used to regather each group's event
  // list per slice) and must be heap-free too.
  FaultPlan plan;
  plan.at(FaultSite::kAddTimer).fail_times = 1'000;
  FaultFixture f(sim::make_saxpy(50'000), pmu::sim_x86(), plan,
                 {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(/*slice_cycles=*/20'000).ok());
  for (const char* name : {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                           "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_L1_DCA"}) {
    ASSERT_TRUE(set.add_named(name).ok()) << name;
  }
  ASSERT_TRUE(set.start().ok());
  ASSERT_NE(set.degradations() & degradation::kMuxSequential, 0u);
  f.machine->run();

  std::vector<long long> v(set.num_events());
  EXPECT_EQ(allocations_over(kIters, [&] { (void)set.read(v); }), 0u);
  EXPECT_TRUE(set.stop().ok());
}

TEST(HotPathAlloc, StopAllocationFree) {
  // stop() snapshots into the preallocated stop buffer and releases the
  // thread context through the thread-local fast path: after one full
  // warm-up cycle it performs no allocation either.
  SimFixture f(sim::make_empty_loop(10), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  std::vector<long long> v(set.num_events());

  // Warm-up cycle: sizes stopped_raw_ and the start-path caches.
  ASSERT_TRUE(set.start().ok());
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.stop(v).ok());

  ASSERT_TRUE(set.start().ok());
  ASSERT_TRUE(set.read(v).ok());
  AllocationGuard guard;
  const Status status = set.stop(v);
  const std::uint64_t delta = guard.delta();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(delta, 0u);
}

TEST(HotPathAlloc, ReadAfterStopAllocationFree) {
  // Post-stop reads serve values from the stop snapshot — also a
  // no-allocation path.
  SimFixture f(sim::make_empty_loop(10), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.start().ok());
  ASSERT_TRUE(set.stop().ok());

  std::vector<long long> v(set.num_events());
  EXPECT_EQ(allocations_over(kIters, [&] { (void)set.read(v); }), 0u);
}

}  // namespace
}  // namespace papirepro::papi
