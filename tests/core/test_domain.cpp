// Counting-domain tests: user-domain counters must exclude the cycles
// the measurement infrastructure itself injects (read system calls,
// overflow handlers), kernel-domain counters must isolate them, and the
// two must add up to the all-domain view.
#include <gtest/gtest.h>

#include "core/eventset.h"
#include "core/options.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

/// Runs saxpy with periodic counter reads (instrumentation overhead) and
/// returns the TOT_CYC reading under `mask`.
long long cycles_in_domain(std::uint32_t mask, std::uint64_t* machine_cycles,
                           std::uint64_t* overhead_cycles) {
  SimFixture f(sim::make_saxpy(20'000), pmu::sim_x86());
  EventSet& set = f.new_set();
  EXPECT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  EXPECT_TRUE(set.set_domain(mask).ok());
  // Periodic reads inject kernel-context cycles while counting runs.
  long long scratch = 0;
  auto timer = f.substrate->add_timer(5'000, [&] {
    (void)f.library->event_set(set.handle()).value()->read({&scratch, 1});
  });
  EXPECT_TRUE(timer.ok());
  EXPECT_TRUE(set.start().ok());
  f.machine->run();
  long long v = 0;
  EXPECT_TRUE(set.stop({&v, 1}).ok());
  if (machine_cycles != nullptr) *machine_cycles = f.machine->cycles();
  if (overhead_cycles != nullptr) {
    *overhead_cycles = f.machine->overhead_cycles();
  }
  return v;
}

TEST(Domain, UserDomainExcludesInstrumentationCycles) {
  std::uint64_t machine_cycles = 0, overhead = 0;
  const long long all =
      cycles_in_domain(domain::kAll, &machine_cycles, &overhead);
  const long long user = cycles_in_domain(domain::kUser, nullptr, nullptr);
  const long long kernel =
      cycles_in_domain(domain::kKernel, nullptr, nullptr);

  EXPECT_GT(overhead, 0u);
  // Identical deterministic runs: the three views decompose exactly.
  EXPECT_EQ(all, user + kernel);
  EXPECT_GT(kernel, 0);
  // Some overhead (the start cost, the post-stop read) falls outside the
  // counting window, so the kernel-domain count is a lower bound.
  EXPECT_LE(static_cast<std::uint64_t>(kernel), overhead);
  EXPECT_LT(user, all);
}

TEST(Domain, NonCycleEventsUnaffectedByUserDomain) {
  SimFixture f(sim::make_saxpy(5'000), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  ASSERT_TRUE(set.set_domain(domain::kUser).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  long long v = 0;
  ASSERT_TRUE(set.stop({&v, 1}).ok());
  EXPECT_EQ(v, 5'000);  // FMAs only ever retire in user context
}

TEST(Domain, KernelOnlyCounterSeesNothingWithoutInstrumentation) {
  papi::SimSubstrateOptions options;
  options.charge_costs = false;  // no reads, no overhead
  SimFixture f(sim::make_saxpy(5'000), pmu::sim_x86(), options);
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(set.set_domain(domain::kKernel).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  long long v = 0;
  ASSERT_TRUE(set.stop({&v, 1}).ok());
  EXPECT_EQ(v, 0);
}

TEST(Domain, ValidationAndStateRules) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  EXPECT_EQ(set.set_domain(0).error(), Error::kInvalid);
  EXPECT_EQ(set.set_domain(0xff).error(), Error::kInvalid);
  EXPECT_EQ(set.counting_domain(), domain::kAll);
  ASSERT_TRUE(set.set_domain(domain::kUser).ok());
  EXPECT_EQ(set.counting_domain(), domain::kUser);
  ASSERT_TRUE(set.start().ok());
  EXPECT_EQ(set.set_domain(domain::kAll).error(), Error::kIsRunning);
  ASSERT_TRUE(set.stop().ok());
}

TEST(Domain, PerSetDomainsAreIndependent) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_x86());
  EventSet& user_set = f.new_set();
  EventSet& all_set = f.new_set();
  ASSERT_TRUE(user_set.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(all_set.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(user_set.set_domain(domain::kUser).ok());

  // Run the first half under the user set (with a read injecting
  // overhead), the rest under the all set.
  ASSERT_TRUE(user_set.start().ok());
  f.machine->run(10'000);
  long long mid = 0;
  ASSERT_TRUE(user_set.read({&mid, 1}).ok());  // charges kernel cycles
  long long user_v = 0;
  ASSERT_TRUE(user_set.stop({&user_v, 1}).ok());
  ASSERT_TRUE(all_set.start().ok());
  f.machine->run();
  long long all_v = 0;
  ASSERT_TRUE(all_set.stop({&all_v, 1}).ok());
  EXPECT_GT(user_v, 0);
  EXPECT_GT(all_v, 0);
}

}  // namespace
}  // namespace papirepro::papi
