#include "core/eventset.h"

#include <gtest/gtest.h>

#include "core/library.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

TEST(EventSet, AddQueryRemove) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  EXPECT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  EXPECT_TRUE(set.add_preset(Preset::kTotIns).ok());
  EXPECT_EQ(set.num_events(), 2u);
  // Duplicate add rejected.
  EXPECT_EQ(set.add_preset(Preset::kTotCyc).error(), Error::kConflict);
  EXPECT_TRUE(set.remove_event(EventId::preset(Preset::kTotCyc)).ok());
  EXPECT_EQ(set.num_events(), 1u);
  EXPECT_EQ(set.remove_event(EventId::preset(Preset::kTotCyc)).error(),
            Error::kNoEvent);
}

TEST(EventSet, AddByName) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  EXPECT_TRUE(set.add_named("PAPI_FP_OPS").ok());
  EXPECT_TRUE(set.add_named("L1D_MISS").ok());  // native name
  EXPECT_EQ(set.add_named("NO_SUCH").error(), Error::kNoEvent);
}

TEST(EventSet, UnmappedPresetRejected) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_ia64());
  EventSet& set = f.new_set();
  // PAPI_FP_INS has no ia64 mapping.
  EXPECT_EQ(set.add_preset(Preset::kFpIns).error(), Error::kNoEvent);
}

TEST(EventSet, ConflictSurfacesAtAddTime) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  // x86 "low" counters {0,1} host all of these:
  EXPECT_TRUE(set.add_named("L1D_MISS").ok());
  EXPECT_TRUE(set.add_named("L1D_ACCESS").ok());
  // Third low-counter event cannot fit without multiplexing.
  EXPECT_EQ(set.add_named("LD_RETIRED").error(), Error::kConflict);
  // The set is unchanged after the failed add.
  EXPECT_EQ(set.num_events(), 2u);
  std::vector<long long> out(2);
  EXPECT_TRUE(set.start().ok());
  EXPECT_TRUE(set.stop(out).ok());
}

TEST(EventSet, StartStopReadBasic) {
  SimFixture f(sim::make_saxpy(1000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.start().ok());
  EXPECT_TRUE(set.running());
  f.machine->run();
  std::vector<long long> values(2);
  ASSERT_TRUE(set.stop(values).ok());
  EXPECT_EQ(values[0], 1000);
  EXPECT_EQ(values[1], static_cast<long long>(f.machine->retired()));
}

TEST(EventSet, SharedNativesAcrossDerivedEvents) {
  // PAPI_BR_INS and PAPI_BR_PRC share the BR_INS native; together with
  // BR_MSP they need only 2 physical counters.
  SimFixture f(sim::make_branchy(5000, 3), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kBrIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kBrMsp).ok());
  ASSERT_TRUE(set.add_preset(Preset::kBrPrc).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(3);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_EQ(v[0], 10000);          // 2n conditional branches
  EXPECT_EQ(v[2], v[0] - v[1]);    // PRC = INS - MSP exactly
  EXPECT_GT(v[1], 0);
}

TEST(EventSet, ReadWhileRunningAndAfterStop) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run(4000);
  std::vector<long long> mid(1);
  ASSERT_TRUE(set.read(mid).ok());
  EXPECT_GT(mid[0], 0);
  f.machine->run();
  std::vector<long long> fin(1);
  ASSERT_TRUE(set.stop(fin).ok());
  EXPECT_EQ(fin[0], 10'000);
  // Post-stop read returns the stop snapshot.
  std::vector<long long> again(1);
  ASSERT_TRUE(set.read(again).ok());
  EXPECT_EQ(again[0], fin[0]);
}

TEST(EventSet, AccumAddsAndResets) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  ASSERT_TRUE(set.start().ok());
  std::vector<long long> acc(1, 0);
  f.machine->run(4000);
  ASSERT_TRUE(set.accum(acc).ok());
  f.machine->run();
  ASSERT_TRUE(set.accum(acc).ok());
  ASSERT_TRUE(set.stop().ok());
  EXPECT_EQ(acc[0], 10'000);
}

TEST(EventSet, ResetZeroesCounts) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFmaIns).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run(4000);
  ASSERT_TRUE(set.reset().ok());
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_LT(v[0], 10'000);
  EXPECT_GT(v[0], 0);
}

TEST(EventSet, StateMachineErrors) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  EXPECT_EQ(set.start().error(), Error::kInvalid);  // empty set
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  EXPECT_EQ(set.stop().error(), Error::kNotRunning);
  std::vector<long long> v(1);
  EXPECT_EQ(set.read(v).error(), Error::kNotRunning);
  ASSERT_TRUE(set.start().ok());
  EXPECT_EQ(set.start().error(), Error::kIsRunning);
  EXPECT_EQ(set.add_preset(Preset::kTotIns).error(), Error::kIsRunning);
  EXPECT_EQ(set.remove_event(EventId::preset(Preset::kTotCyc)).error(),
            Error::kIsRunning);
  ASSERT_TRUE(set.stop().ok());
}

TEST(EventSet, NoOverlappingRunningSets) {
  // The PAPI 3 rule: one running EventSet per substrate.
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& a = f.new_set();
  EventSet& b = f.new_set();
  ASSERT_TRUE(a.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(b.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(a.start().ok());
  EXPECT_EQ(b.start().error(), Error::kIsRunning);
  ASSERT_TRUE(a.stop().ok());
  EXPECT_TRUE(b.start().ok());
  ASSERT_TRUE(b.stop().ok());
}

TEST(EventSet, DestroyRunningSetRejected) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  auto handle = f.library->create_event_set();
  EventSet* set = f.library->event_set(handle.value()).value();
  ASSERT_TRUE(set->add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(set->start().ok());
  EXPECT_EQ(f.library->destroy_event_set(handle.value()).error(),
            Error::kIsRunning);
  ASSERT_TRUE(set->stop().ok());
  EXPECT_TRUE(f.library->destroy_event_set(handle.value()).ok());
  EXPECT_EQ(f.library->event_set(handle.value()).error(),
            Error::kNoEventSet);
}

TEST(EventSet, RawNativeCountsAreNotNormalized) {
  // Low level reports hardware counts verbatim: on power3 the FP_INS
  // preset (straight PM_FPU_INS) includes the converts.
  SimFixture f(sim::make_fcvt_mixed(2000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kFpIns).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.stop(v).ok());
  // n fadds + n converts: the raw count is 2n, NOT n.
  EXPECT_EQ(v[0], 4000);
}

TEST(EventSet, EventsListedInAddOrder) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  const auto events = set.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], EventId::preset(Preset::kTotIns));
  EXPECT_EQ(events[1], EventId::preset(Preset::kTotCyc));
}

}  // namespace
}  // namespace papirepro::papi
