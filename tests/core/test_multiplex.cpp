#include "core/multiplex.h"

#include <gtest/gtest.h>

#include "core/eventset.h"
#include "substrate/host_substrate.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

TEST(Multiplex, MustBeExplicitlyEnabled) {
  // The Section 2 decision: no transparent multiplexing.  Adding more
  // events than fit fails unless enable_multiplex() was called.
  SimFixture f(sim::make_saxpy(1000), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("L1D_MISS").ok());
  ASSERT_TRUE(set.add_named("L1D_ACCESS").ok());
  EXPECT_EQ(set.add_named("LD_RETIRED").error(), Error::kConflict);
  ASSERT_TRUE(set.enable_multiplex().ok());
  EXPECT_TRUE(set.multiplexed());
  EXPECT_TRUE(set.add_named("LD_RETIRED").ok());
  EXPECT_GE(set.num_mux_groups(), 2u);
}

TEST(Multiplex, PlanCoversAllEventsOnce) {
  SimFixture f(sim::make_saxpy(1000), pmu::sim_x86());
  const auto& p = pmu::sim_x86();
  std::vector<pmu::NativeEventCode> natives;
  for (const char* name : {"L1D_MISS", "L1D_ACCESS", "LD_RETIRED",
                           "ST_RETIRED", "FP_OPS_RETIRED",
                           "BR_INS_RETIRED", "L2_MISS", "DTLB_MISS"}) {
    natives.push_back(p.find_event(name)->code);
  }
  auto plans = plan_multiplex(*f.substrate, natives);
  ASSERT_TRUE(plans.ok());
  std::vector<int> seen(natives.size(), 0);
  for (const MuxGroupPlan& g : plans.value()) {
    EXPECT_LE(g.members.size(), p.num_counters);
    EXPECT_EQ(g.members.size(), g.assignment.size());
    for (std::size_t idx : g.members) ++seen[idx];
  }
  for (std::size_t i = 0; i < natives.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "event " << i;
  }
}

TEST(Multiplex, EstimatesConvergeOnLongRun) {
  // 6 FP/branch/memory events on 4 counters over a long saxpy: estimates
  // must land within a few percent of truth.
  SimFixture f(sim::make_saxpy(400'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(/*slice_cycles=*/20'000).ok());
  for (const char* name :
       {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS", "PAPI_TOT_INS",
        "PAPI_BR_INS", "PAPI_L1_DCA"}) {
    ASSERT_TRUE(set.add_named(name).ok()) << name;
  }
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(set.num_events());
  ASSERT_TRUE(set.stop(v).ok());

  const double n = 400'000;
  EXPECT_NEAR(static_cast<double>(v[0]), n, 0.06 * n);        // FMA
  EXPECT_NEAR(static_cast<double>(v[1]), 2 * n, 0.06 * 2 * n);  // LD
  EXPECT_NEAR(static_cast<double>(v[2]), n, 0.06 * n);        // SR
  EXPECT_NEAR(static_cast<double>(v[4]), n, 0.06 * n);        // BR
}

TEST(Multiplex, ShortRunEstimatesDoNotConverge) {
  // The erroneous-results hazard: a run shorter than one full rotation
  // leaves some groups with zero active time -> zero estimates.
  SimFixture f(sim::make_saxpy(2'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(/*slice_cycles=*/1'000'000).ok());
  for (const char* name : {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                           "PAPI_L1_DCM", "PAPI_L1_DCA", "PAPI_TOT_INS"}) {
    ASSERT_TRUE(set.add_named(name).ok());
  }
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(set.num_events());
  ASSERT_TRUE(set.stop(v).ok());
  // At least one event was never scheduled onto the hardware.
  bool some_zero = false;
  for (long long x : v) some_zero |= (x == 0);
  EXPECT_TRUE(some_zero);
}

TEST(Multiplex, TwentyFiveMetricsTauStyle) {
  // "If TAU is configured with the multiple counters option, then up to
  // 25 metrics may be specified" — count 20+ presets at once on 4
  // hardware counters.
  SimFixture f(sim::make_matmul(48), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(/*slice_cycles=*/30'000).ok());
  int added = 0;
  for (Preset p : f.library->available_presets()) {
    if (set.add_preset(p).ok()) ++added;
  }
  EXPECT_GE(added, 20);
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(set.num_events());
  ASSERT_TRUE(set.stop(v).ok());
  // FMA estimate (PAPI_FMA_INS) within 15% of n^3.
  const auto events = set.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i] == EventId::preset(Preset::kFmaIns)) {
      EXPECT_NEAR(static_cast<double>(v[i]), 48.0 * 48 * 48,
                  0.15 * 48 * 48 * 48);
    }
    if (events[i] == EventId::preset(Preset::kTotIns)) {
      EXPECT_NEAR(static_cast<double>(v[i]),
                  static_cast<double>(f.machine->retired()),
                  0.10 * static_cast<double>(f.machine->retired()));
    }
  }
}

TEST(Multiplex, RemoveEventReplansGroups) {
  SimFixture f(sim::make_saxpy(200'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(20'000).ok());
  ASSERT_TRUE(set.add_named("L1D_MISS").ok());
  ASSERT_TRUE(set.add_named("L1D_ACCESS").ok());
  ASSERT_TRUE(set.add_named("LD_RETIRED").ok());
  EXPECT_GE(set.num_mux_groups(), 2u);
  // Dropping one event lets the remaining two co-schedule again.
  ASSERT_TRUE(
      set.remove_event(f.library->event_from_name("LD_RETIRED").value())
          .ok());
  EXPECT_EQ(set.num_mux_groups(), 1u);
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(2);
  ASSERT_TRUE(set.stop(v).ok());
  // One group = exact hardware counts again (no estimation error).
  EXPECT_EQ(v[1], 600'000);  // L1D accesses: 3 per iteration
}

TEST(Multiplex, OverflowIncompatibleWithMultiplex) {
  SimFixture f(sim::make_saxpy(1000), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.enable_multiplex().ok());
  EXPECT_EQ(set.set_overflow(EventId::preset(Preset::kTotIns), 1000,
                             [](EventSet&, const OverflowEvent&) {})
                .error(),
            Error::kConflict);
  // And the reverse: overflow first, then multiplex.
  EventSet& set2 = f.new_set();
  ASSERT_TRUE(set2.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set2.set_overflow(EventId::preset(Preset::kTotIns), 1000,
                                [](EventSet&, const OverflowEvent&) {})
                  .ok());
  EXPECT_EQ(set2.enable_multiplex().error(), Error::kConflict);
}

TEST(Multiplex, GroupPlatformMultiplexesAcrossGroups) {
  // power3: PM_FPU_INS (fp group) and PM_DC_MISS (cache group) conflict
  // directly but multiplex fine.
  SimFixture f(sim::make_saxpy(300'000), pmu::sim_power3(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(/*slice_cycles=*/20'000).ok());
  ASSERT_TRUE(set.add_named("PM_FPU_INS").ok());
  ASSERT_TRUE(set.add_named("PM_DC_MISS").ok());
  EXPECT_EQ(set.num_mux_groups(), 2u);
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(2);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_NEAR(static_cast<double>(v[0]), 300'000.0, 0.08 * 300'000);
  EXPECT_GT(v[1], 0);
}

TEST(Multiplex, ComposesWithSampledEstimationOnAlpha) {
  // Cross-feature: sim-alpha has 2 aggregate counters plus sampled PME
  // events.  Multiplexing must time-slice the aggregate pairs while the
  // sampled events count continuously in their own slots.
  SimFixture f(sim::make_saxpy(400'000), pmu::sim_alpha(),
               {.charge_costs = false});
  ASSERT_TRUE(f.substrate->set_estimation(true).ok());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(20'000).ok());
  // 3 aggregate events (2 counters) + 2 sampled: needs both mechanisms.
  ASSERT_TRUE(set.add_named("CYCLES").ok());
  ASSERT_TRUE(set.add_named("RETIRED_INSTRUCTIONS").ok());
  ASSERT_TRUE(set.add_named("RETIRED_FP").ok());
  ASSERT_TRUE(set.add_named("PME_FMA").ok());
  ASSERT_TRUE(set.add_named("PME_RETIRED_LOADS").ok());
  EXPECT_GE(set.num_mux_groups(), 2u);
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(5);
  ASSERT_TRUE(set.stop(v).ok());
  // Aggregate (multiplex-estimated) and sampled (ProfileMe-estimated)
  // views of the same quantity agree within tolerance.
  EXPECT_NEAR(static_cast<double>(v[2]), 400'000.0, 40'000.0);  // RETIRED_FP
  EXPECT_NEAR(static_cast<double>(v[3]), 400'000.0, 40'000.0);  // PME_FMA
  EXPECT_NEAR(static_cast<double>(v[4]), 800'000.0, 80'000.0);  // loads
}

TEST(Multiplex, MultiplexNotSupportedOnHost) {
  auto library = std::make_unique<Library>(
      std::make_unique<HostSubstrate>());
  auto handle = library->create_event_set();
  EventSet* set = library->event_set(handle.value()).value();
  EXPECT_EQ(set->enable_multiplex().error(), Error::kNoSupport);
}

}  // namespace
}  // namespace papirepro::papi
