// Self-telemetry registry: counter correctness across the control paths,
// zero-allocation and thread-safety guarantees on the bump/trace hot
// paths, trace-export well-formedness (checked structurally, no JSON
// library), and the overhead-attribution acceptance — EventSet's
// overhead_ratio() reproducing the paper's direct-vs-sampling cost gap
// on the sim-alpha (DCPI/DADD) platform.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/eventset.h"
#include "core/library.h"
#include "core/telemetry.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::AllocationGuard;
using papirepro::test::FaultFixture;
using papirepro::test::SimFixture;

constexpr int kWarmup = 64;
constexpr int kIters = 2000;

template <typename Op>
std::uint64_t allocations_over(int iters, Op&& op) {
  for (int i = 0; i < kWarmup; ++i) op();
  AllocationGuard guard;
  for (int i = 0; i < iters; ++i) op();
  return guard.delta();
}

/// Structural JSON check without a JSON dependency: braces/brackets
/// balance outside string literals (escapes honoured), quotes balance,
/// and the document carries the keys chrome://tracing requires.
void expect_wellformed_chrome_json(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    ASSERT_GE(braces, 0) << "unbalanced '}' in:\n" << json;
    ASSERT_GE(brackets, 0) << "unbalanced ']' in:\n" << json;
  }
  EXPECT_FALSE(in_string) << "unterminated string in:\n" << json;
  EXPECT_EQ(braces, 0) << "unbalanced '{' in:\n" << json;
  EXPECT_EQ(brackets, 0) << "unbalanced '[' in:\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(TelemetryCounters, LifecycleCountsMatchOperations) {
  SimFixture f(sim::make_saxpy(2000), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();

  std::vector<long long> v(1);
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.read(v).ok());
  std::vector<long long> acc(1, 0);
  ASSERT_TRUE(set.accum(acc).ok());
  ASSERT_TRUE(set.stop(v).ok());

  const TelemetrySnapshot snap = f.library->telemetry_snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.value(TelemetryCounter::kStarts), 1u);
  EXPECT_EQ(snap.value(TelemetryCounter::kStops), 1u);
  EXPECT_EQ(snap.value(TelemetryCounter::kAccums), 1u);
  // accum() folds through read(), and accum() itself calls reset(): the
  // reads include the accum's inner read, resets count that inner reset.
  EXPECT_GE(snap.value(TelemetryCounter::kReads), 3u);
  EXPECT_GE(snap.value(TelemetryCounter::kResets), 1u);
  EXPECT_GE(snap.threads_seen, 1u);
  EXPECT_EQ(snap.value(TelemetryCounter::kFaultsInjected), 0u);
}

TEST(TelemetryCounters, MuxRotationsAndDegradationsCounted) {
  // Timer service scripted away -> sequential-mux degradation; every
  // read then drives a rotation, and both land in the registry.
  FaultPlan plan;
  plan.at(FaultSite::kAddTimer).fail_times = 1'000;
  FaultFixture f(sim::make_saxpy(50'000), pmu::sim_x86(),
                 plan, {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(/*slice_cycles=*/20'000).ok());
  for (const char* name : {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                           "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_L1_DCA"}) {
    ASSERT_TRUE(set.add_named(name).ok()) << name;
  }
  ASSERT_TRUE(set.start().ok());
  ASSERT_NE(set.degradations() & degradation::kMuxSequential, 0u);
  f.machine->run();
  std::vector<long long> v(set.num_events());
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.stop().ok());

  const TelemetrySnapshot snap = f.library->telemetry_snapshot();
  EXPECT_GE(snap.value(TelemetryCounter::kDegradations), 1u);
  EXPECT_GE(snap.value(TelemetryCounter::kMuxRotations), 2u);
}

TEST(TelemetryCounters, RetriesAndInjectedFaultsCounted) {
  FaultPlan plan;
  plan.at(FaultSite::kProgram) = {/*fail_times=*/2, 0.0, Error::kConflict};
  FaultFixture f(sim::make_saxpy(2000), pmu::sim_x86(), plan);
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());  // 2 transient faults, 2 retries
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());

  const TelemetrySnapshot snap = f.library->telemetry_snapshot();
  EXPECT_EQ(snap.value(TelemetryCounter::kFaultsInjected), 2u);
  EXPECT_GE(snap.value(TelemetryCounter::kRetryAttempts), 2u);
  EXPECT_EQ(snap.value(TelemetryCounter::kRetryExhaustions), 0u);
}

TEST(TelemetryCounters, RetryExhaustionCounted) {
  FaultPlan plan;
  plan.at(FaultSite::kProgram) = {/*fail_times=*/1000, 0.0,
                                  Error::kNoCounters};
  FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), plan);
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  EXPECT_EQ(set.start().error(), Error::kNoCounters);

  const TelemetrySnapshot snap = f.library->telemetry_snapshot();
  EXPECT_GE(snap.value(TelemetryCounter::kRetryAttempts), 2u);
  EXPECT_EQ(snap.value(TelemetryCounter::kRetryExhaustions), 1u);
  EXPECT_EQ(snap.value(TelemetryCounter::kStarts), 0u);
}

TEST(TelemetryCounters, DisabledRegistryCountsNothing) {
  SimFixture f(sim::make_saxpy(2000), pmu::sim_x86(),
               {.charge_costs = false});
  f.library->telemetry().set_enabled(false);
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());

  TelemetrySnapshot snap = f.library->telemetry_snapshot();
  EXPECT_FALSE(snap.enabled);
  EXPECT_EQ(snap.value(TelemetryCounter::kStarts), 0u);
  EXPECT_EQ(snap.value(TelemetryCounter::kStops), 0u);

  // Re-enabling resumes counting on the same registry.
  f.library->telemetry().set_enabled(true);
  ASSERT_TRUE(set.start().ok());
  ASSERT_TRUE(set.stop().ok());
  snap = f.library->telemetry_snapshot();
  EXPECT_EQ(snap.value(TelemetryCounter::kStarts), 1u);
}

TEST(TelemetryAlloc, BumpAndTraceAllocationFree) {
  TelemetryRegistry registry;
  ASSERT_TRUE(registry.set_trace(true, 1024).ok());
  // First touch registers the slab (allocates); everything after must
  // be heap-free — including drops once the ring fills.
  registry.bump(TelemetryCounter::kReads);
  std::uint64_t ts = 0;
  EXPECT_EQ(allocations_over(
                kIters, [&] { registry.bump(TelemetryCounter::kReads); }),
            0u);
  EXPECT_EQ(allocations_over(kIters,
                             [&] {
                               registry.trace(TraceEventKind::kRead, ++ts,
                                              3, 7);
                             }),
            0u);
  const TelemetrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value(TelemetryCounter::kTraceRecords) +
                snap.value(TelemetryCounter::kTraceDrops),
            static_cast<std::uint64_t>(kIters + kWarmup));
}

TEST(TelemetryAlloc, InstrumentedReadWithTracingAllocationFree) {
  // The acceptance path: direct reads with telemetry *and* tracing on
  // stay zero-allocation (ring slots are preallocated; full rings drop).
  SimFixture f(sim::make_empty_loop(10), pmu::sim_x86(),
               {.charge_costs = false});
  ASSERT_TRUE(f.library->set_trace(true).ok());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(set.start().ok());

  std::vector<long long> v(set.num_events());
  EXPECT_EQ(allocations_over(kIters, [&] { (void)set.read(v); }), 0u);
  EXPECT_TRUE(set.stop().ok());
}

TEST(TelemetryThreads, ConcurrentBumpsSumExactly) {
  TelemetryRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kBumpsPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (std::uint64_t i = 0; i < kBumpsPerThread; ++i) {
        registry.bump(TelemetryCounter::kReads);
      }
    });
  }
  // Concurrent snapshots must be safe (and monotone) while bumping.
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t now =
        registry.snapshot().value(TelemetryCounter::kReads);
    EXPECT_GE(now, last);
    last = now;
  }
  for (std::thread& t : threads) t.join();

  const TelemetrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value(TelemetryCounter::kReads),
            kThreads * kBumpsPerThread);
  EXPECT_GE(snap.threads_seen, static_cast<std::uint64_t>(kThreads));
}

TEST(TelemetryThreads, ConcurrentTraceAndDumpAccountsEveryRecord) {
  TelemetryRegistry registry;
  ASSERT_TRUE(registry.set_trace(true, 256).ok());
  constexpr int kThreads = 8;
  constexpr std::uint64_t kEventsPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        registry.trace(TraceEventKind::kRead, i, 1,
                       static_cast<std::uint64_t>(t));
      }
    });
  }
  // Drain concurrently: each thread's ring is SPSC (owner produces,
  // dump_trace consumes under the registry mutex).
  std::size_t drained_rows = 0;
  for (int i = 0; i < 20; ++i) {
    const std::string csv = registry.dump_trace(TraceFormat::kCsv);
    drained_rows += count_lines(csv) - 1;  // minus header
  }
  for (std::thread& t : threads) t.join();
  const std::string final_csv = registry.dump_trace(TraceFormat::kCsv);
  drained_rows += count_lines(final_csv) - 1;

  const TelemetrySnapshot snap = registry.snapshot();
  // Every produced record was either exported or accounted as a drop.
  EXPECT_EQ(snap.value(TelemetryCounter::kTraceRecords),
            static_cast<std::uint64_t>(drained_rows));
  EXPECT_EQ(snap.value(TelemetryCounter::kTraceRecords) +
                snap.value(TelemetryCounter::kTraceDrops),
            kThreads * kEventsPerThread);
  EXPECT_EQ(snap.trace_records_buffered, 0u);
}

TEST(TelemetryTrace, ChromeJsonWellFormed) {
  SimFixture f(sim::make_saxpy(5'000), pmu::sim_x86(),
               {.charge_costs = false});
  ASSERT_TRUE(f.library->set_trace(true).ok());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.stop(v).ok());

  const std::string json = f.library->dump_trace(TraceFormat::kChromeJson);
  expect_wellformed_chrome_json(json);
  // Control events made it into the export with their phase markers.
  EXPECT_NE(json.find("\"start\""), std::string::npos);
  EXPECT_NE(json.find("\"read\""), std::string::npos);
  EXPECT_NE(json.find("\"stop\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  // Destructive drain: a second dump is empty but still well-formed.
  const std::string empty = f.library->dump_trace(TraceFormat::kChromeJson);
  expect_wellformed_chrome_json(empty);
  EXPECT_EQ(empty.find("\"read\""), std::string::npos);
}

TEST(TelemetryTrace, CsvRowsMatchBufferedRecords) {
  SimFixture f(sim::make_saxpy(5'000), pmu::sim_x86(),
               {.charge_costs = false});
  ASSERT_TRUE(f.library->set_trace(true).ok());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.stop(v).ok());

  const TelemetrySnapshot snap = f.library->telemetry_snapshot();
  EXPECT_TRUE(snap.trace_enabled);
  const std::string csv = f.library->dump_trace(TraceFormat::kCsv);
  std::istringstream is(csv);
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_EQ(header, "tid,kind,ts_cycles,dur_cycles,arg");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(is, line)) {
    ++rows;
    // Every row carries exactly the header's five fields.
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4) << line;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(rows), snap.trace_records_buffered);
  EXPECT_EQ(static_cast<std::uint64_t>(rows),
            snap.value(TelemetryCounter::kTraceRecords));
}

TEST(TelemetryTrace, FullRingDropsAreAccountedNeverBlocking) {
  TelemetryRegistry registry;
  ASSERT_TRUE(registry.set_trace(true, TraceRing::kMinCapacity).ok());
  for (std::uint64_t i = 0; i < 100; ++i) {
    registry.trace_instant(TraceEventKind::kRead, i, 0);
  }
  const TelemetrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.value(TelemetryCounter::kTraceRecords),
            static_cast<std::uint64_t>(TraceRing::kMinCapacity));
  EXPECT_EQ(snap.value(TelemetryCounter::kTraceDrops),
            100u - TraceRing::kMinCapacity);
  // Draining frees the slots; tracing resumes on the same ring.
  (void)registry.dump_trace(TraceFormat::kCsv);
  registry.trace_instant(TraceEventKind::kRead, 200, 0);
  EXPECT_EQ(registry.snapshot().value(TelemetryCounter::kTraceRecords),
            static_cast<std::uint64_t>(TraceRing::kMinCapacity) + 1);
}

TEST(TelemetryTrace, SetTraceValidatesCapacity) {
  TelemetryRegistry registry;
  EXPECT_EQ(registry.set_trace(true, TraceRing::kMaxCapacity + 1).error(),
            Error::kInvalid);
  EXPECT_FALSE(registry.tracing());
  EXPECT_TRUE(registry.set_trace(true, 0).ok());  // 0 = keep default
  EXPECT_TRUE(registry.tracing());
  // Disabling stops recording but keeps buffered records for the dump.
  registry.trace_instant(TraceEventKind::kStart, 1, 0);
  EXPECT_TRUE(registry.set_trace(false).ok());
  registry.trace_instant(TraceEventKind::kStart, 2, 0);
  EXPECT_EQ(registry.snapshot().value(TelemetryCounter::kTraceRecords), 1u);
  const std::string csv = registry.dump_trace(TraceFormat::kCsv);
  EXPECT_EQ(count_lines(csv), 2u);  // header + the one surviving record
}

// The E3 acceptance: on sim-alpha the DADD lesson — direct counting
// with fine-grained reads costs >= 10x what hardware-assisted sampling
// does — must be queryable straight off the EventSet.
TEST(TelemetryOverhead, DirectCountingCostsTenTimesSampling) {
  // Direct run: PAPI_TOT_INS polled every 10k cycles through the full
  // syscall-priced read path (sim-alpha: 2000 cycles per read).
  SimFixture direct_f(sim::make_saxpy(300'000), pmu::sim_alpha());
  EventSet& direct_set = direct_f.new_set();
  ASSERT_TRUE(direct_set.add_named("PAPI_TOT_INS").ok());
  long long scratch = 0;
  ASSERT_TRUE(direct_f.substrate
                  ->add_timer(10'000,
                              [&] {
                                (void)direct_set.read({&scratch, 1});
                              })
                  .ok());
  ASSERT_TRUE(direct_set.start().ok());
  direct_f.machine->run();
  long long direct_value = 0;
  ASSERT_TRUE(direct_set.stop({&direct_value, 1}).ok());
  const double direct_ratio = direct_set.overhead_ratio();

  // Sampling run: the same workload counted by the ProfileMe-style
  // estimation engine (12 cycles per sample, no polling).
  SimFixture sampled_f(sim::make_saxpy(300'000), pmu::sim_alpha());
  ASSERT_TRUE(sampled_f.substrate->set_estimation(true).ok());
  EventSet& sampled_set = sampled_f.new_set();
  ASSERT_TRUE(sampled_set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(sampled_set.start().ok());
  sampled_f.machine->run();
  long long sampled_value = 0;
  ASSERT_TRUE(sampled_set.stop({&sampled_value, 1}).ok());
  const double sampled_ratio = sampled_set.overhead_ratio();

  EXPECT_GT(direct_set.overhead_cycles(), 0u);
  EXPECT_GT(direct_set.measured_cycles(), 0u);
  EXPECT_GT(direct_ratio, 0.08);  // double-digit percent territory
  EXPECT_LT(sampled_ratio, 0.03);  // the 1-2 % sampling finding
  EXPECT_GE(direct_ratio, 10.0 * sampled_ratio);
}

TEST(TelemetryOverhead, RatioZeroBeforeAnyRun) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  EXPECT_EQ(set.overhead_cycles(), 0u);
  EXPECT_EQ(set.measured_cycles(), 0u);
  EXPECT_EQ(set.overhead_ratio(), 0.0);
}

TEST(TelemetrySummary, ShutdownDumpWritesToConfiguredFile) {
  const std::string path =
      ::testing::TempDir() + "papirepro_telemetry_summary.txt";
  std::remove(path.c_str());
  ASSERT_EQ(::setenv("PAPIREPRO_TELEMETRY", path.c_str(), 1), 0);
  {
    SimFixture f(sim::make_saxpy(2000), pmu::sim_x86(),
                 {.charge_costs = false});
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    ASSERT_TRUE(set.stop().ok());
    f.library.reset();  // destructor writes the summary
  }
  ::unsetenv("PAPIREPRO_TELEMETRY");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string summary = buffer.str();
  EXPECT_NE(summary.find("starts"), std::string::npos);
  EXPECT_NE(summary.find("reads"), std::string::npos);
  EXPECT_NE(summary.find("trace_drops"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TelemetrySummary, RenderSummaryNamesEveryCounter) {
  TelemetryRegistry registry;
  registry.bump(TelemetryCounter::kStarts);
  const std::string summary =
      TelemetryRegistry::render_summary(registry.snapshot());
  for (const char* name : kTelemetryCounterNames) {
    EXPECT_NE(summary.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace papirepro::papi
