#include "core/allocator.h"

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.h"

namespace papirepro::papi {
namespace {

AllocationInstance inst(std::uint32_t counters,
                        std::vector<std::uint32_t> allowed,
                        std::vector<int> prio = {}) {
  return {counters, std::move(allowed), std::move(prio)};
}

bool valid(const AllocationInstance& in, const AllocationResult& r) {
  std::uint32_t used = 0;
  for (std::size_t e = 0; e < in.allowed.size(); ++e) {
    const int c = r.assignment[e];
    if (c == AllocationResult::kUnassigned) continue;
    if ((in.allowed[e] & (1u << c)) == 0) return false;
    if (used & (1u << c)) return false;
    used |= 1u << c;
  }
  return true;
}

/// Exhaustive optimum for small instances (oracle).
std::uint32_t brute_force_max(const AllocationInstance& in) {
  const std::size_t n = in.allowed.size();
  std::uint32_t best = 0;
  std::uint32_t used = 0;
  auto dfs = [&](auto&& self, std::size_t e, std::uint32_t mapped) -> void {
    best = std::max(best, mapped);
    if (e == n) return;
    self(self, e + 1, mapped);  // leave e unmapped
    for (std::uint32_t c = 0; c < in.num_counters; ++c) {
      if ((in.allowed[e] & (1u << c)) && !(used & (1u << c))) {
        used |= 1u << c;
        self(self, e + 1, mapped + 1);
        used &= ~(1u << c);
      }
    }
  };
  dfs(dfs, 0, 0);
  return best;
}

TEST(Allocator, TrivialCompleteAssignment) {
  const auto in = inst(2, {0b01, 0b10});
  const AllocationResult r = solve_max_cardinality(in);
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(valid(in, r));
}

TEST(Allocator, AugmentingPathBeatsGreedy) {
  // Event 0 can use {0,1}; event 1 only {0}.  Greedy first-fit places
  // event 0 on counter 0, then fails event 1.  The optimal matcher
  // reroutes event 0 to counter 1.
  const auto in = inst(2, {0b11, 0b01});
  const AllocationResult greedy = solve_greedy_first_fit(in);
  EXPECT_EQ(greedy.mapped_count, 1u);
  const AllocationResult optimal = solve_max_cardinality(in);
  EXPECT_TRUE(optimal.complete());
  EXPECT_EQ(optimal.assignment[0], 1);
  EXPECT_EQ(optimal.assignment[1], 0);
}

TEST(Allocator, DeepAugmentingChain) {
  // Chain: e0:{0,1} e1:{1,2} e2:{2,3} e3:{3} forces full reshuffle when
  // processed in a hostile order.
  const auto in = inst(4, {0b0011, 0b0110, 0b1100, 0b1000});
  const AllocationResult r = solve_max_cardinality(in);
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(valid(in, r));
}

TEST(Allocator, InfeasibleReportsPartial) {
  // Three events all restricted to the same single counter.
  const auto in = inst(2, {0b01, 0b01, 0b01});
  const AllocationResult r = solve_max_cardinality(in);
  EXPECT_EQ(r.mapped_count, 1u);
  EXPECT_FALSE(r.complete());
  EXPECT_TRUE(valid(in, r));
}

TEST(Allocator, EmptyMaskEventNeverMapped) {
  const auto in = inst(4, {0b1111, 0});
  const AllocationResult r = solve_max_cardinality(in);
  EXPECT_EQ(r.mapped_count, 1u);
  EXPECT_EQ(r.assignment[1], AllocationResult::kUnassigned);
}

TEST(Allocator, MaxWeightPrefersHighPriority) {
  // Two events want the same single counter: the heavier one wins.
  const auto in = inst(1, {0b1, 0b1}, {1, 10});
  const AllocationResult r = solve_max_weight(in);
  EXPECT_EQ(r.assignment[0], AllocationResult::kUnassigned);
  EXPECT_EQ(r.assignment[1], 0);
}

TEST(Allocator, MaxWeightStillMaximumCardinalityWhenPossible) {
  const auto in = inst(2, {0b11, 0b01}, {10, 1});
  const AllocationResult r = solve_max_weight(in);
  EXPECT_TRUE(r.complete());
}

TEST(Allocator, ZeroEvents) {
  const auto in = inst(4, {});
  const AllocationResult r = solve_max_cardinality(in);
  EXPECT_EQ(r.mapped_count, 0u);
  EXPECT_TRUE(r.complete());
}

// Property sweep: the optimal matcher equals the brute-force optimum and
// always beats-or-ties greedy, on randomized instances.
class AllocatorProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AllocatorProperty, OptimalMatchesBruteForce) {
  const auto [num_events, num_counters, seed] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const std::uint32_t full = (1u << num_counters) - 1;

  for (int trial = 0; trial < 40; ++trial) {
    AllocationInstance in;
    in.num_counters = static_cast<std::uint32_t>(num_counters);
    for (int e = 0; e < num_events; ++e) {
      in.allowed.push_back(static_cast<std::uint32_t>(rng.next()) & full);
    }
    const AllocationResult optimal = solve_max_cardinality(in);
    const AllocationResult greedy = solve_greedy_first_fit(in);
    EXPECT_TRUE(valid(in, optimal));
    EXPECT_TRUE(valid(in, greedy));
    EXPECT_EQ(optimal.mapped_count, brute_force_max(in));
    EXPECT_GE(optimal.mapped_count, greedy.mapped_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, AllocatorProperty,
    ::testing::Combine(::testing::Values(2, 4, 6, 8),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(1, 2, 3)));

// Max-weight property: total mapped weight is optimal (checked against
// brute force over subsets).
TEST(AllocatorProperty, MaxWeightIsOptimalOnRandomInstances) {
  Xoshiro256 rng(424242);
  for (int trial = 0; trial < 60; ++trial) {
    AllocationInstance in;
    in.num_counters = 4;
    const int n = 2 + static_cast<int>(rng.next_below(5));
    for (int e = 0; e < n; ++e) {
      in.allowed.push_back(static_cast<std::uint32_t>(rng.next()) & 0xF);
      in.priority.push_back(static_cast<int>(rng.next_below(100)));
    }

    const AllocationResult r = solve_max_weight(in);
    EXPECT_TRUE(valid(in, r));
    long long got = 0;
    for (int e = 0; e < n; ++e) {
      if (r.assignment[e] != AllocationResult::kUnassigned) {
        got += in.priority[e];
      }
    }

    // Brute force best weight.
    long long best = 0;
    std::uint32_t used = 0;
    auto dfs = [&](auto&& self, int e, long long w) -> void {
      best = std::max(best, w);
      if (e == n) return;
      self(self, e + 1, w);
      for (std::uint32_t c = 0; c < 4; ++c) {
        if ((in.allowed[e] & (1u << c)) && !(used & (1u << c))) {
          used |= 1u << c;
          self(self, e + 1, w + in.priority[e]);
          used &= ~(1u << c);
        }
      }
    };
    dfs(dfs, 0, 0);
    EXPECT_EQ(got, best) << "trial " << trial;
  }
}

}  // namespace
}  // namespace papirepro::papi
