// Retry/degradation hardening of the portable layers, exercised against
// the FaultInjectingSubstrate.  This is the fault matrix of the issue's
// acceptance criteria: (a) scripted transient program() failures are
// retried and the run completes with correct counts, (b) a permanent
// fault surfaces the original substrate error code — never a retry
// artifact, (c) narrow-counter wraparound runs produce the same totals
// as full-width runs, and everything is deterministic given the plan
// seed.  The environment variable PAPIREPRO_FAULT_SEEDS (used by the CI
// fault-matrix job) widens the seeded tests across N extra seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/eventset.h"
#include "core/library.h"
#include "pmu/platform.h"
#include "substrate/fault_substrate.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::FaultFixture;

/// Seeds for the seed-sweep tests: always the baseline seed, plus
/// PAPIREPRO_FAULT_SEEDS derived ones when the CI matrix asks for them.
std::vector<std::uint64_t> fault_seeds() {
  std::vector<std::uint64_t> seeds = {0x5eedfa17ULL};
  if (const char* env = std::getenv("PAPIREPRO_FAULT_SEEDS")) {
    const int extra = std::atoi(env);
    for (int i = 1; i <= extra; ++i) {
      seeds.push_back(0x5eedfa17ULL + 0x9e3779b9ULL * i);
    }
  }
  return seeds;
}

TEST(FaultHardening, RetryPolicyValidation) {
  FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), FaultPlan{});
  EXPECT_EQ(f.library->set_retry_policy({0, 0}).error(), Error::kInvalid);
  EXPECT_EQ(f.library->set_retry_policy({-3, 0}).error(), Error::kInvalid);
  ASSERT_TRUE(f.library->set_retry_policy({5, 10}).ok());
  EXPECT_EQ(f.library->retry_policy().max_attempts, 5);
  EXPECT_EQ(f.library->retry_policy().backoff_base_usec, 10u);
}

TEST(FaultHardening, TransientErrorsClassified) {
  EXPECT_TRUE(is_transient(Error::kConflict));
  EXPECT_TRUE(is_transient(Error::kNoCounters));
  EXPECT_TRUE(is_transient(Error::kSystem));
  EXPECT_FALSE(is_transient(Error::kInvalid));
  EXPECT_FALSE(is_transient(Error::kNoSupport));
  EXPECT_FALSE(is_transient(Error::kOk));
}

// Acceptance (a): scripted transient program() failure is retried and
// the run succeeds with correct counts.
TEST(FaultHardening, TransientProgramFaultRetriedToCorrectCounts) {
  FaultPlan plan;
  plan.at(FaultSite::kProgram) = {/*fail_times=*/2, 0.0, Error::kConflict};
  FaultFixture f(sim::make_saxpy(2000), pmu::sim_x86(), plan);
  // Default policy: 3 attempts — exactly enough for a fail-twice script.
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  EXPECT_EQ(f.fault->injected_count(FaultSite::kProgram), 2u);
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_EQ(static_cast<std::uint64_t>(v[0]), f.machine->retired());
  EXPECT_EQ(set.degradations(), 0u);  // recovered fully, not degraded
}

TEST(FaultHardening, TransientCreateContextFaultRetried) {
  FaultPlan plan;
  plan.at(FaultSite::kCreateContext) = {2, 0.0, Error::kNoCounters};
  FaultFixture f(sim::make_saxpy(2000), pmu::sim_x86(), plan);
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());  // first start also registers the thread
  EXPECT_EQ(f.fault->injected_count(FaultSite::kCreateContext), 2u);
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_EQ(static_cast<std::uint64_t>(v[0]), f.machine->retired());
}

TEST(FaultHardening, ScriptedReadFaultRetriedToExactValue) {
  FaultPlan plan;
  plan.at(FaultSite::kRead) = {2, 0.0, Error::kSystem};
  FaultFixture f(sim::make_saxpy(2000), pmu::sim_x86(), plan,
                 {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.read(v).ok());  // absorbed both scripted read faults
  EXPECT_EQ(f.fault->injected_count(FaultSite::kRead), 2u);
  EXPECT_EQ(static_cast<std::uint64_t>(v[0]), f.machine->retired());
  ASSERT_TRUE(set.stop().ok());
}

// Acceptance (b): when the fault is permanent, the caller sees the
// original substrate error code — not a retry artifact.
TEST(FaultHardening, ExhaustedRetriesSurfaceOriginalTransientCode) {
  FaultPlan plan;
  plan.at(FaultSite::kProgram) = {/*fail_times=*/1000, 0.0,
                                  Error::kNoCounters};
  FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), plan);
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  const Status started = set.start();
  EXPECT_EQ(started.error(), Error::kNoCounters);
  EXPECT_FALSE(set.running());
  // The retry budget (3 attempts) was spent before giving up.
  EXPECT_EQ(f.fault->injected_count(FaultSite::kProgram), 3u);
}

TEST(FaultHardening, PermanentFaultNotRetried) {
  // kNoSupport is not transient: exactly one attempt, original code out.
  FaultPlan plan;
  plan.at(FaultSite::kProgram) = {1000, 0.0, Error::kNoSupport};
  FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), plan);
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  EXPECT_EQ(set.start().error(), Error::kNoSupport);
  EXPECT_EQ(f.fault->call_count(FaultSite::kProgram), 1u);
}

TEST(FaultHardening, RetriesDisabledByPolicy) {
  FaultPlan plan;
  plan.at(FaultSite::kProgram) = {1, 0.0, Error::kConflict};
  FaultFixture f(sim::make_saxpy(2000), pmu::sim_x86(), plan);
  ASSERT_TRUE(f.library->set_retry_policy({1, 0}).ok());  // no retries
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  EXPECT_EQ(set.start().error(), Error::kConflict);
  // The transient has passed; the same call now succeeds — proving the
  // first failure really was surfaced rather than absorbed.
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_EQ(static_cast<std::uint64_t>(v[0]), f.machine->retired());
}

// Satellite regression: a create_context() failure during implicit
// registration must not leak a half-registered thread slot.
TEST(FaultHardening, ThreadSlotReleasedOnCreateContextFailure) {
  FaultPlan plan;
  plan.at(FaultSite::kCreateContext) = {1, 0.0, Error::kNoCounters};
  FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), plan);
  ASSERT_TRUE(f.library->set_retry_policy({1, 0}).ok());  // no retries
  EXPECT_EQ(f.library->register_thread().error(), Error::kNoCounters);
  // The failed registration left no ghost slot behind...
  EXPECT_EQ(f.library->num_threads(), 0u);
  // ...so the next attempt can claim the thread cleanly.
  ASSERT_TRUE(f.library->register_thread().ok());
  EXPECT_EQ(f.library->num_threads(), 1u);
  ASSERT_TRUE(f.library->unregister_thread().ok());
  EXPECT_EQ(f.library->num_threads(), 0u);
}

// Acceptance (c): a 32-bit-counter run yields the same totals as the
// 64-bit run of the same workload.
TEST(FaultHardening, ThirtyTwoBitCountersMatchFullWidth) {
  auto totals = [](std::uint32_t width) {
    FaultPlan plan;
    plan.counter_width_bits = width;
    FaultFixture f(sim::make_matmul(24), pmu::sim_x86(), plan,
                   {.charge_costs = false});
    EventSet& set = f.new_set();
    EXPECT_TRUE(set.add_named("PAPI_TOT_INS").ok());
    EXPECT_TRUE(set.add_named("PAPI_L1_DCM").ok());
    EXPECT_TRUE(set.start().ok());
    f.machine->run();
    std::vector<long long> v(2);
    EXPECT_TRUE(set.stop(v).ok());
    return v;
  };
  EXPECT_EQ(totals(32), totals(64));
}

TEST(FaultHardening, NarrowCountersFoldAcrossWraps) {
  // 18-bit counters wrap every 262144 counts; saxpy(150k) retires ~1M
  // instructions, so the raw register wraps several times.  Folding the
  // deltas of periodic reads must recover the exact 64-bit totals.
  auto totals = [](std::uint32_t width) {
    FaultPlan plan;
    plan.counter_width_bits = width;
    FaultFixture f(sim::make_saxpy(150'000), pmu::sim_x86(), plan,
                   {.charge_costs = false});
    EventSet& set = f.new_set();
    EXPECT_TRUE(set.add_named("PAPI_TOT_INS").ok());
    EXPECT_TRUE(set.start().ok());
    std::vector<long long> v(1);
    // Read every 100k instructions — far under one wrap period of
    // deltas, far over the register capacity in total.
    while (!f.machine->halted()) {
      f.machine->run(100'000);
      EXPECT_TRUE(set.read(v).ok());
    }
    EXPECT_TRUE(set.stop(v).ok());
    EXPECT_EQ(static_cast<std::uint64_t>(v[0]), f.machine->retired());
    return v;
  };
  const auto narrow = totals(18);
  const auto wide = totals(64);
  EXPECT_EQ(narrow, wide);
  EXPECT_GT(narrow[0], 1 << 18);  // the register really did wrap
}

TEST(FaultHardening, ResetClearsFoldingState) {
  FaultPlan plan;
  plan.counter_width_bits = 20;
  FaultFixture f(sim::make_saxpy(100'000), pmu::sim_x86(), plan,
                 {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run(200'000);
  const std::uint64_t before_reset = f.machine->retired();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.reset().ok());
  f.machine->run(100'000);
  ASSERT_TRUE(set.read(v).ok());
  EXPECT_EQ(static_cast<std::uint64_t>(v[0]),
            f.machine->retired() - before_reset);
  ASSERT_TRUE(set.stop().ok());
}

// Degradation ladder rung 2: multiplex without a timer service falls
// back to sequential slices rotated by read(), loudly flagged.
TEST(FaultHardening, MuxTimerFailureDegradesToSequentialSlices) {
  FaultPlan plan;
  plan.at(FaultSite::kAddTimer) = {1000, 0.0, Error::kNoSupport};
  FaultFixture f(sim::make_saxpy(400'000), pmu::sim_x86(), plan,
                 {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(/*slice_cycles=*/20'000).ok());
  for (const char* name : {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                           "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_L1_DCA"}) {
    ASSERT_TRUE(set.add_named(name).ok()) << name;
  }
  ASSERT_TRUE(set.start().ok());
  EXPECT_EQ(set.degradations() & degradation::kMuxSequential,
            degradation::kMuxSequential);
  // Reads drive the rotation the dead timer no longer provides.
  std::vector<long long> v(set.num_events());
  while (!f.machine->halted()) {
    f.machine->run(30'000);
    ASSERT_TRUE(set.read(v).ok());
  }
  ASSERT_TRUE(set.stop(v).ok());
  // Estimates converge despite the dead timer (looser than the timer
  // path: rotation cadence follows the read loop).
  const double n = 400'000;
  EXPECT_NEAR(static_cast<double>(v[0]), n, 0.20 * n);          // FMA
  EXPECT_NEAR(static_cast<double>(v[1]), 2 * n, 0.20 * 2 * n);  // LD
  EXPECT_NEAR(static_cast<double>(v[4]), n, 0.20 * n);          // BR
}

TEST(FaultHardening, MuxTimerHealthyMeansNoDegradationFlag) {
  FaultFixture f(sim::make_saxpy(100'000), pmu::sim_x86(), FaultPlan{},
                 {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(20'000).ok());
  ASSERT_TRUE(set.add_named("PAPI_FMA_INS").ok());
  ASSERT_TRUE(set.add_named("PAPI_LD_INS").ok());
  ASSERT_TRUE(set.add_named("PAPI_SR_INS").ok());
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.add_named("PAPI_BR_INS").ok());
  ASSERT_TRUE(set.start().ok());
  EXPECT_EQ(set.degradations(), 0u);
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
}

TEST(FaultHardening, MuxSurvivesDroppedTimerSlices) {
  // A lossy timer (every other firing swallowed) stretches slices but
  // must not corrupt estimates — active-cycle scaling absorbs it.
  FaultPlan plan;
  plan.timer_drop_probability = 0.5;
  FaultFixture f(sim::make_saxpy(400'000), pmu::sim_x86(), plan,
                 {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(10'000).ok());
  for (const char* name : {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                           "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_L1_DCA"}) {
    ASSERT_TRUE(set.add_named(name).ok()) << name;
  }
  ASSERT_TRUE(set.start().ok());
  EXPECT_EQ(set.degradations(), 0u);  // timer armed fine, just lossy
  f.machine->run();
  std::vector<long long> v(set.num_events());
  ASSERT_TRUE(set.stop(v).ok());
  const double n = 400'000;
  EXPECT_NEAR(static_cast<double>(v[0]), n, 0.15 * n);  // FMA
  EXPECT_NEAR(static_cast<double>(v[4]), n, 0.15 * n);  // BR
}

// Acceptance: all of it is deterministic — the same plan seed produces
// bit-identical counts and injection traces across independent runs.
TEST(FaultHardening, FaultyRunsDeterministicPerSeed) {
  for (const std::uint64_t seed : fault_seeds()) {
    auto run_once = [seed] {
      FaultPlan plan;
      plan.seed = seed;
      plan.at(FaultSite::kProgram) = {1, /*probability=*/0.2,
                                      Error::kConflict};
      plan.at(FaultSite::kRead) = {0, /*probability=*/0.2, Error::kSystem};
      plan.counter_width_bits = 24;
      FaultFixture f(sim::make_saxpy(50'000), pmu::sim_x86(), plan,
                     {.charge_costs = false});
      EventSet& set = f.new_set();
      EXPECT_TRUE(set.add_named("PAPI_TOT_INS").ok());
      EXPECT_TRUE(set.add_named("PAPI_L1_DCA").ok());
      EXPECT_TRUE(set.start().ok());
      std::vector<long long> v(2);
      while (!f.machine->halted()) {
        f.machine->run(20'000);
        EXPECT_TRUE(set.read(v).ok());
      }
      EXPECT_TRUE(set.stop(v).ok());
      v.push_back(static_cast<long long>(
          f.fault->injected_count(FaultSite::kProgram)));
      v.push_back(static_cast<long long>(
          f.fault->injected_count(FaultSite::kRead)));
      return v;
    };
    EXPECT_EQ(run_once(), run_once()) << "seed " << seed;
  }
}

// Probabilistic faults under retry: whatever the seed injects on the
// read path, the retry layer must keep totals exact (reads are
// idempotent, so a retried read loses nothing).
TEST(FaultHardening, ProbabilisticReadFaultsNeverCorruptTotals) {
  for (const std::uint64_t seed : fault_seeds()) {
    FaultPlan plan;
    plan.seed = seed;
    plan.at(FaultSite::kRead) = {0, /*probability=*/0.3, Error::kSystem};
    FaultFixture f(sim::make_saxpy(50'000), pmu::sim_x86(), plan,
                   {.charge_costs = false});
    ASSERT_TRUE(f.library->set_retry_policy({10, 0}).ok());
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
    ASSERT_TRUE(set.start().ok());
    std::vector<long long> v(1);
    while (!f.machine->halted()) {
      f.machine->run(10'000);
      ASSERT_TRUE(set.read(v).ok());
    }
    ASSERT_TRUE(set.stop(v).ok());
    EXPECT_EQ(static_cast<std::uint64_t>(v[0]), f.machine->retired())
        << "seed " << seed;
    EXPECT_GT(f.fault->injected_count(FaultSite::kRead), 0u);
  }
}

}  // namespace
}  // namespace papirepro::papi
