// Multi-component substrate architecture (the PAPI-C direction): the
// Library's component registry, namespaced event resolution
// ("mem::BANDWIDTH_RD"), and EventSets spanning the CPU core plus the
// memory/uncore and network components.  The oracles are the simulated
// machine's own cache/page statistics and the CommWorld's per-rank
// message counts — the counter file and the truth come from the same
// model, so every cross-component value is checked exactly.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/library.h"
#include "sim/comm.h"
#include "substrate/component_substrates.h"
#include "substrate/fault_substrate.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::AllocationGuard;
using papirepro::test::SimFixture;

/// SimFixture plus the two non-CPU components registered: a mem
/// component over the fixture machine and a net component over a
/// single-rank CommWorld wrapping it.  The world outlives the library
/// (NetworkSubstrate references it), hence the member order.
struct ComponentFixture {
  SimFixture sim;
  sim::CommWorld world;
  MemBandwidthSubstrate* mem = nullptr;  // owned by library
  NetworkSubstrate* net = nullptr;       // owned by library
  std::uint32_t mem_id = 0;
  std::uint32_t net_id = 0;

  explicit ComponentFixture(sim::Workload w,
                            const SimSubstrateOptions& options = {})
      : sim(std::move(w), pmu::sim_x86(), options),
        world({sim.machine.get()}) {
    auto mem_sub = std::make_unique<MemBandwidthSubstrate>(*sim.machine);
    mem = mem_sub.get();
    mem_id = sim.library
                 ->register_component("mem", "uncore counters",
                                      std::move(mem_sub))
                 .value();
    auto net_sub = std::make_unique<NetworkSubstrate>(world);
    net = net_sub.get();
    net_id = sim.library
                 ->register_component("net", "nic counters",
                                      std::move(net_sub))
                 .value();
  }

  Library& library() { return *sim.library; }
  sim::Machine& machine() { return *sim.machine; }
  EventSet& new_set() { return sim.new_set(); }
};

// ---- registry ----------------------------------------------------------

TEST(ComponentRegistry, EnumerationReportsEveryComponent) {
  ComponentFixture f(sim::make_saxpy(1'000));
  ASSERT_EQ(f.library().num_components(), 3u);

  const auto cpu = f.library().component_info(0);
  ASSERT_TRUE(cpu.ok());
  EXPECT_EQ(cpu.value().id, 0u);
  EXPECT_EQ(cpu.value().name, "cpu");
  EXPECT_EQ(cpu.value().num_counters, f.library().num_counters());
  EXPECT_TRUE(cpu.value().enabled);

  const auto mem = f.library().component_info(f.mem_id);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem.value().name, "mem");
  EXPECT_EQ(mem.value().num_counters, 4u);
  EXPECT_EQ(mem.value().description, "uncore counters");

  const auto net = f.library().component_info(f.net_id);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net.value().name, "net");

  EXPECT_EQ(f.library().component_by_name("cpu").value(), 0u);
  EXPECT_EQ(f.library().component_by_name("mem").value(), f.mem_id);
  EXPECT_EQ(f.library().component_by_name("net").value(), f.net_id);
  EXPECT_EQ(f.library().component_by_name("gpu").error(),
            Error::kNoComponent);
  EXPECT_EQ(f.library().component_info(99).error(), Error::kNoComponent);
  EXPECT_EQ(f.library().component_substrate(99), nullptr);
}

TEST(ComponentRegistry, RejectsBadRegistrations) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  auto make_mem = [&] {
    return std::make_unique<MemBandwidthSubstrate>(*f.machine);
  };
  // Names are namespace prefixes: non-empty, no ':' separator chars.
  EXPECT_EQ(f.library->register_component("", "x", make_mem()).error(),
            Error::kInvalid);
  EXPECT_EQ(
      f.library->register_component("mem::x", "x", make_mem()).error(),
      Error::kInvalid);
  EXPECT_EQ(f.library->register_component("mem", "x", nullptr).error(),
            Error::kInvalid);
  ASSERT_TRUE(f.library->register_component("mem", "x", make_mem()).ok());
  // Duplicate prefixes would make resolution ambiguous.
  EXPECT_EQ(f.library->register_component("mem", "y", make_mem()).error(),
            Error::kConflict);
  EXPECT_EQ(f.library->register_component("cpu", "y", make_mem()).error(),
            Error::kConflict);
  // The id must fit the event-code component field: hard cap.
  for (std::uint32_t i = f.library->num_components(); i < kMaxComponents;
       ++i) {
    ASSERT_TRUE(f.library
                    ->register_component("c" + std::to_string(i), "x",
                                         make_mem())
                    .ok());
  }
  EXPECT_EQ(f.library->register_component("overflow", "x", make_mem())
                .error(),
            Error::kNoMemory);
}

// ---- namespaced event resolution ---------------------------------------

TEST(ComponentNamespace, QualifiedNamesResolveAndRoundTrip) {
  ComponentFixture f(sim::make_saxpy(1'000));

  const auto bw = f.library().event_from_name("mem::BANDWIDTH_RD");
  ASSERT_TRUE(bw.ok());
  EXPECT_EQ(bw.value().component, f.mem_id);
  EXPECT_EQ(bw.value().kind, EventId::Kind::kNative);
  EXPECT_EQ(bw.value().as_native(), mem_events::kBandwidthRd);
  EXPECT_EQ(f.library().event_name(bw.value()).value(),
            "mem::BANDWIDTH_RD");
  EXPECT_TRUE(f.library().query_event(bw.value()));
  // The integer code carries the component id in bits 30..24.
  EXPECT_EQ(event_code_component(bw.value().code()), f.mem_id);

  // Component presets resolve with or without the PAPI_ prefix.
  const auto tcm = f.library().event_from_name("mem::PAPI_L2_TCM");
  ASSERT_TRUE(tcm.ok());
  EXPECT_EQ(tcm.value(), EventId::preset(Preset::kL2Tcm, f.mem_id));
  EXPECT_EQ(f.library().event_from_name("mem::L2_TCM").value(),
            tcm.value());

  const auto snt = f.library().event_from_name("net::PAPI_MSG_SNT");
  ASSERT_TRUE(snt.ok());
  EXPECT_EQ(snt.value(), EventId::preset(Preset::kMsgSnt, f.net_id));

  // Descriptions route to the owning component's substrate.
  const auto desc = f.library().event_description(bw.value());
  ASSERT_TRUE(desc.ok());
  EXPECT_NE(desc.value().find("read"), std::string::npos);

  // An unprefixed name still resolves in the CPU component.
  const auto cyc = f.library().event_from_name("PAPI_TOT_CYC");
  ASSERT_TRUE(cyc.ok());
  EXPECT_EQ(cyc.value().component, 0u);
}

TEST(ComponentNamespace, UnknownPrefixAndEventErrorPaths) {
  ComponentFixture f(sim::make_saxpy(1'000));
  // Unknown prefix is a *component* error, distinct from kNoEvent.
  EXPECT_EQ(f.library().event_from_name("gpu::CYCLES").error(),
            Error::kNoComponent);
  // Known prefix, unknown name inside the namespace.
  EXPECT_EQ(f.library().event_from_name("mem::NOT_AN_EVENT").error(),
            Error::kNoEvent);
  // The net component does not map CPU presets.
  EXPECT_EQ(f.library().event_from_name("net::PAPI_TOT_CYC").error(),
            Error::kNoEvent);
  // EventIds stamped with an unregistered component id.
  EXPECT_FALSE(f.library().query_event(
      EventId::native(mem_events::kBandwidthRd, 5)));
  EXPECT_EQ(
      f.library().event_name(EventId::native(0x01, 5)).error(),
      Error::kNoComponent);
  EventSet& set = f.new_set();
  EXPECT_EQ(set.add_event(EventId::native(0x01, 5)).error(),
            Error::kNoComponent);
  EXPECT_EQ(set.add_named("gpu::CYCLES").error(), Error::kNoComponent);
}

TEST(ComponentRegistry, DisabledComponentRejectsNewAdds) {
  ComponentFixture f(sim::make_saxpy(1'000));
  EXPECT_EQ(f.library().set_component_enabled(99, false).error(),
            Error::kNoComponent);

  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());
  ASSERT_TRUE(f.library().set_component_enabled(f.mem_id, false).ok());
  EXPECT_FALSE(f.library().component_info(f.mem_id).value().enabled);

  // New adds against the disabled component fail loudly...
  EXPECT_EQ(set.add_named("mem::BANDWIDTH_RD").error(),
            Error::kComponentDisabled);
  // ...but the already-built set keeps counting (soft disable).
  ASSERT_TRUE(set.start().ok());
  f.machine().run();
  long long v[1] = {0};
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_GT(v[0], 0);

  ASSERT_TRUE(f.library().set_component_enabled(f.mem_id, true).ok());
  EXPECT_TRUE(set.add_named("mem::BANDWIDTH_RD").ok());
}

// ---- cross-component EventSets -----------------------------------------

TEST(ComponentEventSet, SpanningSetMatchesMachineOracles) {
  ComponentFixture f(sim::make_saxpy(4'000), {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());
  ASSERT_TRUE(set.add_named("mem::BANDWIDTH_RD").ok());
  ASSERT_TRUE(set.add_named("net::MSG_SENT").ok());
  ASSERT_EQ(set.num_events(), 4u);

  ASSERT_TRUE(set.start().ok());
  f.machine().run();
  std::vector<long long> values(4, -1);
  ASSERT_TRUE(set.stop(values).ok());

  const auto& l2 = f.machine().l2();
  EXPECT_EQ(values[0],
            static_cast<long long>(f.machine().retired()));
  EXPECT_EQ(values[1], static_cast<long long>(l2.stats().misses));
  EXPECT_EQ(values[2], static_cast<long long>(l2.stats().misses *
                                              l2.config().line_bytes));
  EXPECT_EQ(values[3], 0);  // saxpy sends no messages
  EXPECT_GT(values[1], 0);
}

TEST(ComponentEventSet, RingWorkloadCountsNetTraffic) {
  // A one-rank ring sends to (and receives from) itself: every message
  // lands in the same rank's stats, driven by the machine's own probes.
  constexpr std::int64_t kIters = 16;
  constexpr std::int64_t kChunkWords = 8;
  ComponentFixture f(sim::make_ring_rank(0, 1, kIters, 50, kChunkWords),
                     {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("net::MSG_SENT").ok());
  ASSERT_TRUE(set.add_named("net::MSG_RECV").ok());
  ASSERT_TRUE(set.add_named("net::WORDS_SENT").ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());

  ASSERT_TRUE(set.start().ok());
  f.machine().run();
  std::vector<long long> values(4, -1);
  ASSERT_TRUE(set.stop(values).ok());

  const sim::CommWorld::RankStats& stats = f.world.stats(0);
  EXPECT_EQ(values[0], static_cast<long long>(stats.sends));
  EXPECT_EQ(values[0], kIters);
  EXPECT_EQ(values[1], static_cast<long long>(stats.recvs));
  EXPECT_EQ(values[2], kIters * kChunkWords);
  EXPECT_GT(values[3], 0);

  // Presets resolve against the owning component: PAPI_MSG_SNT in the
  // net namespace counts the same source.
  EventSet& preset_set = f.new_set();
  ASSERT_TRUE(preset_set.add_named("net::PAPI_MSG_SNT").ok());
  ASSERT_TRUE(preset_set.start().ok());
  long long again[1] = {-1};
  ASSERT_TRUE(preset_set.stop(again).ok());
  EXPECT_EQ(again[0], 0);  // machine already halted: delta is zero
}

TEST(ComponentEventSet, ResetAndReadAfterStopStayCoherent) {
  ComponentFixture f(sim::make_saxpy(6'000), {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::L2_ACCESSES").ok());

  ASSERT_TRUE(set.start().ok());
  f.machine().run(2'000);
  std::vector<long long> mid(2, 0);
  ASSERT_TRUE(set.read(mid).ok());
  EXPECT_GT(mid[0], 0);
  EXPECT_GT(mid[1], 0);

  // reset() re-bases *every* slice: both components restart from zero.
  ASSERT_TRUE(set.reset().ok());
  std::vector<long long> after_reset(2, -1);
  ASSERT_TRUE(set.read(after_reset).ok());
  EXPECT_LT(after_reset[0], mid[0]);
  EXPECT_LT(after_reset[1], mid[1]);

  f.machine().run();
  std::vector<long long> final_values(2, 0);
  ASSERT_TRUE(set.stop(final_values).ok());

  // The stop() snapshot is frozen: reads after stop return it verbatim
  // even though the sources keep existing.
  std::vector<long long> again(2, -1);
  ASSERT_TRUE(set.read(again).ok());
  EXPECT_EQ(again, final_values);

  // accum() adds-and-rebases across components in one call.
  ASSERT_TRUE(set.start().ok());
  f.machine().run();
  std::vector<long long> inout(2, 10);
  ASSERT_TRUE(set.accum(inout).ok());
  EXPECT_GE(inout[0], 10);
  ASSERT_TRUE(set.stop().ok());
}

TEST(ComponentEventSet, RemoveEventCompactsSlices) {
  ComponentFixture f(sim::make_saxpy(2'000), {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("net::MSG_SENT").ok());
  const auto mem_event = f.library().event_from_name("mem::L2_MISSES");
  ASSERT_TRUE(set.remove_event(mem_event.value()).ok());
  ASSERT_EQ(set.num_events(), 2u);

  ASSERT_TRUE(set.start().ok());
  f.machine().run();
  std::vector<long long> values(2, -1);
  ASSERT_TRUE(set.stop(values).ok());
  EXPECT_EQ(values[0], static_cast<long long>(f.machine().retired()));
  EXPECT_EQ(values[1], 0);
}

TEST(ComponentEventSet, OverflowAndMultiplexAreCpuOnly) {
  ComponentFixture f(sim::make_saxpy(1'000));
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());

  // Off-core units have no interrupt line: arming overflow on a mem
  // event is a wrong-component request, surfaced as kNoSupport.
  const EventId mem_event =
      f.library().event_from_name("mem::L2_MISSES").value();
  EXPECT_EQ(set.set_overflow(mem_event, 1'000,
                             [](EventSet&, const OverflowEvent&) {})
                .error(),
            Error::kNoSupport);

  // Multiplexing time-slices one component's counters; a spanning set
  // cannot be multiplexed, in either order.
  EXPECT_EQ(set.enable_multiplex().error(), Error::kConflict);
  EventSet& muxed = f.new_set();
  ASSERT_TRUE(muxed.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(muxed.enable_multiplex().ok());
  EXPECT_EQ(muxed.add_named("mem::L2_MISSES").error(), Error::kConflict);
}

// ---- zero-allocation hot path ------------------------------------------

TEST(ComponentEventSet, SteadyStateSpanningReadsDoNotAllocate) {
  ComponentFixture f(sim::make_saxpy(20'000), {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::BANDWIDTH_RD").ok());
  ASSERT_TRUE(set.add_named("net::MSG_SENT").ok());

  ASSERT_TRUE(set.start().ok());
  std::vector<long long> values(3, 0);
  ASSERT_TRUE(set.read(values).ok());  // warm-up: scratch sized at start

  AllocationGuard guard;
  for (int i = 0; i < 64; ++i) {
    f.machine().run(200);
    ASSERT_TRUE(set.read(values).ok());
  }
  EXPECT_EQ(guard.delta(), 0u)
      << "cross-component read() allocated on the steady-state path";
  ASSERT_TRUE(set.stop(values).ok());
}

// ---- per-component telemetry -------------------------------------------

TEST(ComponentTelemetry, FanOutsAreAttributedPerComponent) {
  ComponentFixture f(sim::make_saxpy(2'000), {.charge_costs = false});
  EventSet& spanning = f.new_set();
  ASSERT_TRUE(spanning.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(spanning.add_named("mem::L2_MISSES").ok());

  ASSERT_TRUE(spanning.start().ok());
  f.machine().run(500);
  std::vector<long long> values(2, 0);
  ASSERT_TRUE(spanning.read(values).ok());
  ASSERT_TRUE(spanning.read(values).ok());
  ASSERT_TRUE(spanning.stop(values).ok());

  // A cpu-only set afterwards: its operations land on component 0 only.
  EventSet& cpu_only = f.new_set();
  ASSERT_TRUE(cpu_only.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(cpu_only.start().ok());
  ASSERT_TRUE(cpu_only.stop().ok());

  const TelemetrySnapshot snap = f.library().telemetry_snapshot();
  EXPECT_EQ(snap.num_components, 3u);
  using CC = ComponentCounter;
  EXPECT_EQ(snap.component_value(0, CC::kStarts), 2u);
  EXPECT_EQ(snap.component_value(f.mem_id, CC::kStarts), 1u);
  EXPECT_EQ(snap.component_value(f.net_id, CC::kStarts), 0u);
  EXPECT_EQ(snap.component_value(0, CC::kStops), 2u);
  EXPECT_EQ(snap.component_value(f.mem_id, CC::kStops), 1u);
  // Each spanning read snapshots both components once.
  EXPECT_EQ(snap.component_value(f.mem_id, CC::kReads),
            snap.component_value(0, CC::kReads));
  EXPECT_GE(snap.component_value(f.mem_id, CC::kReads), 2u);
  // The library-wide counter still counts *calls*, not fan-outs.
  EXPECT_EQ(snap.value(TelemetryCounter::kStarts), 2u);
}

// ---- allocation cache keying -------------------------------------------

TEST(ComponentAllocCache, EntriesAreKeyedAndInvalidatedPerComponent) {
  ComponentFixture f(sim::make_saxpy(1'000));
  AllocationCache& cache = f.library().allocation_cache();
  // The same small native codes exist in both non-CPU namespaces: the
  // component id must be part of entry identity.
  const std::vector<pmu::NativeEventCode> codes = {0x01, 0x02};
  const std::vector<int> priorities = {0, 0};

  const auto base = cache.stats();
  ASSERT_TRUE(
      cache.allocate(*f.mem, codes, priorities, f.mem_id).ok());
  ASSERT_TRUE(
      cache.allocate(*f.net, codes, priorities, f.net_id).ok());
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, base.misses + 2);  // distinct keys: two solves

  ASSERT_TRUE(
      cache.allocate(*f.mem, codes, priorities, f.mem_id).ok());
  ASSERT_TRUE(
      cache.allocate(*f.net, codes, priorities, f.net_id).ok());
  stats = cache.stats();
  EXPECT_EQ(stats.hits, base.hits + 2);

  // An uncore reconfiguration bumps only mem's generation: mem entries
  // flush, net entries survive.
  f.mem->bump_allocation_generation();
  ASSERT_TRUE(
      cache.allocate(*f.net, codes, priorities, f.net_id).ok());
  ASSERT_TRUE(
      cache.allocate(*f.mem, codes, priorities, f.mem_id).ok());
  stats = cache.stats();
  EXPECT_EQ(stats.hits, base.hits + 3);      // net hit again
  EXPECT_EQ(stats.misses, base.misses + 3);  // mem re-solved
  EXPECT_GT(stats.invalidations, base.invalidations);

  // A component id beyond the registry cap cannot be cached.
  EXPECT_EQ(cache.allocate(*f.mem, codes, priorities, kMaxComponents)
                .error(),
            Error::kNoComponent);
}

// ---- fault decorator over a non-CPU component --------------------------

TEST(ComponentFault, DecoratedMemComponentRetriesTransients) {
  SimFixture f(sim::make_saxpy(4'000), pmu::sim_x86(),
               {.charge_costs = false});
  FaultPlan plan;
  plan.at(FaultSite::kRead).fail_times = 2;
  auto wrapped = std::make_unique<FaultInjectingSubstrate>(
      std::make_unique<MemBandwidthSubstrate>(*f.machine), plan);
  FaultInjectingSubstrate* fault = wrapped.get();
  const auto mem_id =
      f.library->register_component("mem", "faulty uncore",
                                    std::move(wrapped));
  ASSERT_TRUE(mem_id.ok());
  // The decorator forwards the component's identity surface intact.
  EXPECT_EQ(f.library->event_from_name("mem::BANDWIDTH_RD")
                .value()
                .component,
            mem_id.value());

  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> values(2, -1);
  // Both scripted read transients hit the mem slice and are absorbed by
  // the library's bounded retry; the values come back exact.
  ASSERT_TRUE(set.stop(values).ok());
  EXPECT_EQ(values[1],
            static_cast<long long>(f.machine->l2().stats().misses));
  EXPECT_EQ(fault->injected_count(FaultSite::kRead), 2u);
  EXPECT_GE(f.library->telemetry_snapshot().value(
                TelemetryCounter::kRetryAttempts),
            2u);
}

TEST(ComponentFault, PermanentFaultOnMemSliceSurfacesWithoutDegrading) {
  SimFixture f(sim::make_saxpy(1'000), pmu::sim_x86());
  FaultPlan plan;
  plan.at(FaultSite::kStart).fail_times = 1 << 20;
  plan.at(FaultSite::kStart).error = Error::kNoSupport;  // permanent
  auto wrapped = std::make_unique<FaultInjectingSubstrate>(
      std::make_unique<MemBandwidthSubstrate>(*f.machine), plan);
  FaultInjectingSubstrate* fault = wrapped.get();
  ASSERT_TRUE(
      f.library->register_component("mem", "x", std::move(wrapped)).ok());

  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::L2_MISSES").ok());
  // The mem slice's start fails permanently: the whole spanning start
  // unwinds (the cpu slice is stopped again) and the injected code
  // surfaces unchanged.
  EXPECT_EQ(set.start().error(), Error::kNoSupport);
  EXPECT_FALSE(set.running());

  // Healing the substrate makes the same set start cleanly: nothing was
  // left half-started by the unwind.
  fault->set_enabled(false);
  ASSERT_TRUE(set.start().ok());
  ASSERT_TRUE(set.stop().ok());
}

// ---- threads spanning components ---------------------------------------

TEST(ComponentThreading, PerThreadSpanningSetsCountIndependently) {
  // Two ring ranks, each on its own machine and thread, each driving a
  // per-thread EventSet spanning cpu:: + mem:: + net::.  Exercises the
  // lazily-created per-thread non-CPU contexts under TSan.
  constexpr std::size_t kRanks = 2;
  constexpr std::int64_t kIters = 12;
  constexpr std::int64_t kChunkWords = 4;

  std::vector<sim::Workload> workloads;
  std::vector<std::unique_ptr<sim::Machine>> machines;
  for (std::size_t r = 0; r < kRanks; ++r) {
    workloads.push_back(
        sim::make_ring_rank(r, kRanks, kIters, 40, kChunkWords));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
    if (workloads.back().setup) workloads.back().setup(*machines.back());
  }
  sim::CommWorld world({machines[0].get(), machines[1].get()});

  auto sub = std::make_unique<SimSubstrate>(
      *machines[0], pmu::sim_x86(),
      SimSubstrateOptions{.charge_costs = false});
  SimSubstrate* cpu = sub.get();
  Library library(std::move(sub));
  auto mem_sub = std::make_unique<MemBandwidthSubstrate>(*machines[0]);
  MemBandwidthSubstrate* mem = mem_sub.get();
  ASSERT_TRUE(
      library.register_component("mem", "x", std::move(mem_sub)).ok());
  auto net_sub = std::make_unique<NetworkSubstrate>(world);
  NetworkSubstrate* net = net_sub.get();
  ASSERT_TRUE(
      library.register_component("net", "x", std::move(net_sub)).ok());

  std::vector<EventSet*> sets(kRanks, nullptr);
  for (std::size_t r = 0; r < kRanks; ++r) {
    auto handle = library.create_event_set();
    ASSERT_TRUE(handle.ok());
    sets[r] = library.event_set(handle.value()).value();
    ASSERT_TRUE(sets[r]->add_preset(Preset::kTotIns).ok());
    ASSERT_TRUE(sets[r]->add_named("mem::L2_ACCESSES").ok());
    ASSERT_TRUE(sets[r]->add_named("net::MSG_SENT").ok());
    ASSERT_TRUE(sets[r]->add_named("net::MSG_RECV").ok());
  }

  // gtest assertions are main-thread-only; workers record outcomes.
  std::vector<std::vector<long long>> got(
      kRanks, std::vector<long long>(4, -1));
  std::vector<unsigned char> clean(kRanks, 0);
  const bool halted = world.run_threaded(
      10'000'000,
      [&](std::size_t rank) {
        cpu->bind_thread_machine(*machines[rank]);
        mem->bind_thread_machine(*machines[rank]);
        net->bind_thread_rank(rank);
        clean[rank] = sets[rank]->start().ok();
      },
      [&](std::size_t rank) {
        if (clean[rank]) {
          clean[rank] = sets[rank]->stop(got[rank]).ok();
        }
        cpu->unbind_thread_machine();
        mem->unbind_thread_machine();
        net->unbind_thread_rank();
      });
  ASSERT_TRUE(halted);

  for (std::size_t r = 0; r < kRanks; ++r) {
    ASSERT_TRUE(clean[r]) << "rank " << r;
    // Each thread observed exactly its own rank's traffic.
    EXPECT_EQ(got[r][0],
              static_cast<long long>(machines[r]->retired()))
        << "rank " << r;
    EXPECT_GT(got[r][1], 0) << "rank " << r;
    EXPECT_EQ(got[r][2], static_cast<long long>(world.stats(r).sends))
        << "rank " << r;
    EXPECT_EQ(got[r][2], kIters) << "rank " << r;
    EXPECT_EQ(got[r][3], static_cast<long long>(world.stats(r).recvs))
        << "rank " << r;
  }
}

TEST(ComponentThreading, DisableRacesRunningSpanningSet) {
  // set_component_enabled is a soft disable: it must be safe to flip
  // concurrently with a running spanning set, existing sets keep
  // counting through every toggle, and re-enabling restores adds.
  ComponentFixture f(sim::make_saxpy(500'000), {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_named("mem::L2_ACCESSES").ok());
  ASSERT_TRUE(set.start().ok());

  std::atomic<bool> stop_toggling{false};
  std::thread toggler([&] {
    int i = 0;
    while (!stop_toggling.load(std::memory_order_acquire)) {
      (void)f.library().set_component_enabled(f.mem_id, ++i % 2 == 0);
    }
    (void)f.library().set_component_enabled(f.mem_id, true);
  });

  std::vector<long long> v(2, 0);
  for (int i = 0; i < 300; ++i) {
    f.machine().run(200);
    ASSERT_TRUE(set.read(v).ok());
  }
  stop_toggling.store(true, std::memory_order_release);
  toggler.join();

  // The set survived every toggle; the component ends re-enabled.
  ASSERT_TRUE(set.read(v).ok());
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_GT(v[0], 0);
  ASSERT_TRUE(f.library().component_info(f.mem_id).value().enabled);
  EventSet& fresh = f.new_set();
  EXPECT_TRUE(fresh.add_named("mem::L2_MISSES").ok());
}

}  // namespace
}  // namespace papirepro::papi
