#include "core/presets.h"

#include <gtest/gtest.h>

#include <set>

namespace papirepro::papi {
namespace {

TEST(Presets, NamesRoundTrip) {
  for (std::size_t i = 0; i < kNumPresets; ++i) {
    const auto p = static_cast<Preset>(i);
    const auto back = preset_from_name(preset_name(p));
    ASSERT_TRUE(back.has_value()) << preset_name(p);
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(preset_from_name("PAPI_NOPE").has_value());
}

TEST(Presets, NamesAreUniqueAndPapiPrefixed) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumPresets; ++i) {
    const auto name = preset_name(static_cast<Preset>(i));
    EXPECT_TRUE(name.starts_with("PAPI_")) << name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
  }
}

TEST(Presets, CodesCarryHighBit) {
  const std::uint32_t code = preset_code(Preset::kFpOps);
  EXPECT_NE(code & kPresetCodeBase, 0u);
  const auto back = preset_from_code(code);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, Preset::kFpOps);
}

TEST(Presets, CodeDecodingRejectsJunk) {
  EXPECT_FALSE(preset_from_code(0x1234).has_value());  // no high bit
  EXPECT_FALSE(preset_from_code(kPresetCodeBase | 9999).has_value());
}

TEST(Presets, DescriptionsNonEmpty) {
  for (std::size_t i = 0; i < kNumPresets; ++i) {
    EXPECT_FALSE(preset_description(static_cast<Preset>(i)).empty());
  }
}

}  // namespace
}  // namespace papirepro::papi
