// AllocationCache: memoized counter-allocation solves.  The EventSet
// build-up pattern (N add_event calls, each a full rebuild) must perform
// at most one matcher solve per distinct native list, a repeated
// identical build must be 100 % cache hits, conflicts are cached like
// successes, LRU eviction bounds the footprint, and a substrate
// allocation-generation bump (sim-alpha estimation toggle) flushes
// everything.
#include "core/allocation_cache.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/eventset.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

pmu::NativeEventCode code_of(const pmu::PlatformDescription& p,
                             const char* name) {
  const pmu::NativeEvent* ev = p.find_event(name);
  EXPECT_NE(ev, nullptr) << name;
  return ev->code;
}

TEST(AllocationCache, BuildUpSolvesAtMostOncePerPrefix) {
  // Each add_event rebuilds over a new (longer) native list: N adds may
  // miss at most N times, and the remove-then-readd path must hit the
  // prefix entries already cached.
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("L1D_MISS").ok());
  ASSERT_TRUE(set.add_named("L1D_ACCESS").ok());
  const auto after_build = f.library->allocation_cache().stats();
  EXPECT_LE(after_build.misses, 2u);

  // Removing the tail event rebuilds over the one-event prefix -> hit.
  ASSERT_TRUE(
      set.remove_event(f.library->event_from_name("L1D_ACCESS").value())
          .ok());
  const auto after_remove = f.library->allocation_cache().stats();
  EXPECT_EQ(after_remove.misses, after_build.misses);
  EXPECT_GT(after_remove.hits, after_build.hits);
}

TEST(AllocationCache, RepeatedIdenticalBuildIsAllHits) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventSet& first = f.new_set();
  ASSERT_TRUE(first.add_named("L1D_MISS").ok());
  ASSERT_TRUE(first.add_named("L1D_ACCESS").ok());
  const auto after_first = f.library->allocation_cache().stats();

  EventSet& second = f.new_set();
  ASSERT_TRUE(second.add_named("L1D_MISS").ok());
  ASSERT_TRUE(second.add_named("L1D_ACCESS").ok());
  const auto after_second = f.library->allocation_cache().stats();
  EXPECT_EQ(after_second.misses, after_first.misses);  // zero new solves
  EXPECT_GE(after_second.hits, after_first.hits + 2);
}

TEST(AllocationCache, RepeatedMultiplexPlanIsAllHits) {
  // plan_multiplex probes many subsets per build; the probe sequence is
  // deterministic, so an identical mux build replays entirely from cache.
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  const char* names[] = {"PAPI_FMA_INS", "PAPI_LD_INS", "PAPI_SR_INS",
                         "PAPI_TOT_INS", "PAPI_BR_INS", "PAPI_L1_DCA"};

  EventSet& first = f.new_set();
  ASSERT_TRUE(first.enable_multiplex().ok());
  for (const char* name : names) ASSERT_TRUE(first.add_named(name).ok());
  const auto after_first = f.library->allocation_cache().stats();
  EXPECT_GT(after_first.misses, 0u);

  EventSet& second = f.new_set();
  ASSERT_TRUE(second.enable_multiplex().ok());
  for (const char* name : names) ASSERT_TRUE(second.add_named(name).ok());
  const auto after_second = f.library->allocation_cache().stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
}

TEST(AllocationCache, ConflictOutcomesAreCached) {
  // A failed full solve is as expensive as a successful one (it is what
  // routes plan_multiplex to its partial fallback), so kConflict results
  // memoize too.
  sim::Workload w = sim::make_saxpy(100);
  sim::Machine machine(w.program, pmu::sim_x86().machine);
  SimSubstrate substrate(machine, pmu::sim_x86());
  const auto& p = pmu::sim_x86();
  // Three events that fit only the same restricted slots: unallocatable
  // together (the Multiplex.MustBeExplicitlyEnabled conflict trio).
  const std::vector<pmu::NativeEventCode> events = {
      code_of(p, "L1D_MISS"), code_of(p, "L1D_ACCESS"),
      code_of(p, "LD_RETIRED")};

  AllocationCache cache;
  EXPECT_EQ(cache.allocate(substrate, events, {}).error(),
            Error::kConflict);
  EXPECT_EQ(cache.allocate(substrate, events, {}).error(),
            Error::kConflict);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(AllocationCache, PrioritiesArePartOfTheKey) {
  sim::Workload w = sim::make_saxpy(100);
  sim::Machine machine(w.program, pmu::sim_x86().machine);
  SimSubstrate substrate(machine, pmu::sim_x86());
  const auto& p = pmu::sim_x86();
  const std::vector<pmu::NativeEventCode> events = {
      code_of(p, "L1D_MISS"), code_of(p, "L1D_ACCESS")};

  AllocationCache cache;
  const std::vector<int> prio_a = {1, 2};
  const std::vector<int> prio_b = {2, 1};
  EXPECT_TRUE(cache.allocate(substrate, events, prio_a).ok());
  EXPECT_TRUE(cache.allocate(substrate, events, prio_b).ok());
  EXPECT_TRUE(cache.allocate(substrate, events, prio_a).ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(AllocationCache, LruEvictionAtCapacity) {
  sim::Workload w = sim::make_saxpy(100);
  sim::Machine machine(w.program, pmu::sim_x86().machine);
  SimSubstrate substrate(machine, pmu::sim_x86());
  const auto& p = pmu::sim_x86();
  const pmu::NativeEventCode e0 = code_of(p, "L1D_MISS");
  const pmu::NativeEventCode e1 = code_of(p, "L1D_ACCESS");

  AllocationCache cache(/*capacity=*/2);
  const std::vector<pmu::NativeEventCode> key_a = {e0};
  const std::vector<pmu::NativeEventCode> key_b = {e1};
  const std::vector<pmu::NativeEventCode> key_c = {e0, e1};

  EXPECT_TRUE(cache.allocate(substrate, key_a, {}).ok());  // miss
  EXPECT_TRUE(cache.allocate(substrate, key_b, {}).ok());  // miss
  EXPECT_TRUE(cache.allocate(substrate, key_a, {}).ok());  // hit, A -> MRU
  EXPECT_TRUE(cache.allocate(substrate, key_c, {}).ok());  // miss, evicts B
  EXPECT_TRUE(cache.allocate(substrate, key_b, {}).ok());  // miss again
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_LE(stats.entries, 2u);

  cache.clear();
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(AllocationCache, EstimationToggleInvalidates) {
  // sim-alpha PME events are unplaceable until estimation mode turns on;
  // set_estimation bumps the substrate's allocation generation, which
  // must flush stale conflict entries rather than replay them.
  sim::Workload w = sim::make_saxpy(100);
  sim::Machine machine(w.program, pmu::sim_alpha().machine);
  SimSubstrate substrate(machine, pmu::sim_alpha());
  const std::vector<pmu::NativeEventCode> events = {
      code_of(pmu::sim_alpha(), "PME_FMA")};

  AllocationCache cache;
  EXPECT_FALSE(cache.allocate(substrate, events, {}).ok());
  ASSERT_TRUE(substrate.set_estimation(true).ok());
  EXPECT_TRUE(cache.allocate(substrate, events, {}).ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.invalidations, 1u);

  // And back: disabling estimation must invalidate the success entry.
  ASSERT_TRUE(substrate.set_estimation(false).ok());
  EXPECT_FALSE(cache.allocate(substrate, events, {}).ok());
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

}  // namespace
}  // namespace papirepro::papi
