// Batched snapshot reads (Library::read_many / snapshot_all) and the
// epoch-protected registry they walk.  The contract under test: one
// call serves many EventSets — the caller's running set as a full live
// read, everything else from its seqlock publication — with per-entry
// statuses instead of batch failures, zero heap allocation, and zero
// lock acquisitions in steady state.  The Registry suite races the
// walk against handle churn and destroys to pin the deferred
// reclamation protocol (suites are Batched* so the CI ThreadSanitizer
// shard picks both up).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/eventset.h"
#include "core/library.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::AllocationGuard;
using papirepro::test::SimFixture;

/// Builds `n` two-event sets on `f`; sets [1..n) are started and
/// stopped (their finals live in the publication), set 0 is left
/// stopped for the caller to start.  Returns handles in creation order.
std::vector<int> make_sets(SimFixture& f, int n,
                           std::vector<std::array<long long, 2>>* finals) {
  std::vector<int> handles;
  for (int i = 0; i < n; ++i) {
    auto handle = f.library->create_event_set();
    EXPECT_TRUE(handle.ok());
    EventSet& set = *f.library->event_set(handle.value()).value();
    EXPECT_TRUE(set.add_preset(Preset::kTotIns).ok());
    EXPECT_TRUE(set.add_preset(Preset::kTotCyc).ok());
    handles.push_back(handle.value());
    if (i == 0) continue;
    EXPECT_TRUE(set.start().ok());
    std::array<long long, 2> v{};
    EXPECT_TRUE(set.stop(v).ok());
    if (finals != nullptr) finals->push_back(v);
  }
  return handles;
}

TEST(BatchedRead, ReadManyMatchesIndividualReads) {
  SimFixture f(sim::make_saxpy(2'000), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> handles = make_sets(f, 3, &finals);
  EventSet* sets[3];
  for (int i = 0; i < 3; ++i) {
    sets[i] = f.library->event_set(handles[i]).value();
  }
  ASSERT_TRUE(sets[0]->start().ok());
  f.machine->run();

  std::vector<long long> values(6);
  std::vector<SnapshotEntry> entries(3);
  std::size_t used = 0;
  ASSERT_TRUE(f.library->read_many(sets, values, entries, &used).ok());
  ASSERT_EQ(used, 6u);

  // Entry 0 is the caller's running set: a full live read, no flags.
  // The machine is idle between the calls, so an individual read()
  // must reproduce the batch values exactly.
  std::array<long long, 2> live{};
  ASSERT_TRUE(sets[0]->read(live).ok());
  EXPECT_EQ(entries[0].status, Error::kOk);
  EXPECT_EQ(entries[0].flags, 0u);
  EXPECT_EQ(entries[0].num_values, 2u);
  EXPECT_EQ(values[entries[0].first_value], live[0]);
  EXPECT_EQ(values[entries[0].first_value + 1], live[1]);

  // Entries 1..2 are stopped sets: served from the publication their
  // stop() refreshed, so the batch sees exactly the stop values.
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(entries[i].handle, handles[i]);
    EXPECT_EQ(entries[i].status, Error::kOk);
    EXPECT_EQ(entries[i].num_values, 2u);
    EXPECT_NE(entries[i].flags & read_flag::kPublished, 0u);
    EXPECT_EQ(values[entries[i].first_value], finals[i - 1][0]) << i;
    EXPECT_EQ(values[entries[i].first_value + 1], finals[i - 1][1]) << i;
  }
  EXPECT_TRUE(sets[0]->stop().ok());
}

TEST(BatchedRead, UnknownHandleIsPerEntryStatusNotBatchFailure) {
  SimFixture f(sim::make_saxpy(500), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> handles = make_sets(f, 2, &finals);
  const int batch[2] = {handles[1], 999'999};
  std::vector<long long> values(4);
  std::vector<SnapshotEntry> entries(2);
  ASSERT_TRUE(f.library->read_many_handles(batch, values, entries).ok());
  EXPECT_EQ(entries[0].status, Error::kOk);
  EXPECT_EQ(entries[0].num_values, 2u);
  EXPECT_EQ(entries[1].status, Error::kNoEventSet);
  EXPECT_EQ(entries[1].num_values, 0u);
}

TEST(BatchedRead, NeverStartedSetReportsNotRunning) {
  SimFixture f(sim::make_saxpy(500), pmu::sim_x86(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  EventSet* sets[1] = {&set};
  std::vector<long long> values(2);
  std::vector<SnapshotEntry> entries(1);
  ASSERT_TRUE(f.library->read_many(sets, values, entries).ok());
  EXPECT_EQ(entries[0].status, Error::kNotRunning);
  EXPECT_EQ(entries[0].num_values, 0u);
}

TEST(BatchedRead, SnapshotAllCoversEveryLiveSetInHandleOrder) {
  SimFixture f(sim::make_saxpy(2'000), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> handles = make_sets(f, 4, &finals);
  // One extra set that never runs: it must still appear, as kNotRunning.
  EventSet& idle = f.new_set();
  ASSERT_TRUE(idle.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(f.library->event_set(handles[0]).value()->start().ok());

  std::vector<SnapshotEntry> entries;
  std::vector<long long> values;
  ASSERT_TRUE(f.library->snapshot_all(entries, values).ok());
  ASSERT_EQ(entries.size(), 5u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].handle, entries[i].handle);  // handle order
  }
  std::size_t total = 0;
  for (const SnapshotEntry& e : entries) {
    if (e.handle == idle.handle()) {
      EXPECT_EQ(e.status, Error::kNotRunning);
      EXPECT_EQ(e.num_values, 0u);
    } else {
      EXPECT_EQ(e.status, Error::kOk);
      EXPECT_EQ(e.num_values, 2u);
      EXPECT_EQ(e.first_value, total);  // values land back-to-back
    }
    total += e.num_values;
  }
  EXPECT_EQ(values.size(), total);

  // The fixed-capacity span overload must agree with the vector one.
  std::vector<SnapshotEntry> span_entries(8);
  std::vector<long long> span_values(16);
  std::size_t n_entries = 0;
  std::size_t n_values = 0;
  ASSERT_TRUE(f.library
                  ->snapshot_all(span_entries, span_values, &n_entries,
                                 &n_values)
                  .ok());
  ASSERT_EQ(n_entries, entries.size());
  ASSERT_EQ(n_values, values.size());
  for (std::size_t i = 0; i < n_entries; ++i) {
    EXPECT_EQ(span_entries[i].handle, entries[i].handle) << i;
    EXPECT_EQ(span_entries[i].status, entries[i].status) << i;
    EXPECT_EQ(span_entries[i].num_values, entries[i].num_values) << i;
  }
  for (std::size_t i = 0; i < n_values; ++i) {
    EXPECT_EQ(span_values[i], values[i]) << i;
  }
  EXPECT_TRUE(f.library->event_set(handles[0]).value()->stop().ok());
}

TEST(BatchedRead, PublicationCyclesStampAdvancesAndAges) {
  SimFixture f(sim::make_saxpy(2'000), pmu::sim_x86(),
               {.charge_costs = false});
  // Advance the clock first so the stopped set's stop()-time stamp is
  // distinguishable from "never ran".
  f.machine->run(1'000);
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> handles = make_sets(f, 2, &finals);
  EventSet* live = f.library->event_set(handles[0]).value();
  EventSet* stopped = f.library->event_set(handles[1]).value();
  ASSERT_TRUE(live->start().ok());
  f.machine->run(2'000);

  EventSet* sets[2] = {live, stopped};
  std::vector<long long> values(4);
  std::vector<SnapshotEntry> entries(2);
  ASSERT_TRUE(f.library->read_many(sets, values, entries).ok());
  // Both entries ran at some point, so both carry a nonzero stamp.
  EXPECT_GT(entries[0].pub_cycles, 0u);
  EXPECT_GT(entries[1].pub_cycles, 0u);
  const std::uint64_t live_stamp = entries[0].pub_cycles;
  const std::uint64_t stopped_stamp = entries[1].pub_cycles;

  // More work, another batch: the live set's stamp advances with its
  // reads; the stopped set's publication is frozen at its stop().
  f.machine->run(2'000);
  ASSERT_TRUE(f.library->read_many(sets, values, entries).ok());
  EXPECT_GT(entries[0].pub_cycles, live_stamp);
  EXPECT_EQ(entries[1].pub_cycles, stopped_stamp);

  // A never-started set has no stamp to report.
  EventSet& idle = f.new_set();
  ASSERT_TRUE(idle.add_preset(Preset::kTotIns).ok());
  EventSet* idle_sets[1] = {&idle};
  ASSERT_TRUE(f.library->read_many(idle_sets, values, entries).ok());
  EXPECT_EQ(entries[0].status, Error::kNotRunning);
  EXPECT_EQ(entries[0].pub_cycles, 0u);
  EXPECT_TRUE(live->stop().ok());
}

TEST(BatchedRead, CapacityPrechecksFailWithInvalid) {
  SimFixture f(sim::make_saxpy(500), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> handles = make_sets(f, 2, &finals);
  EventSet* sets[2] = {f.library->event_set(handles[0]).value(),
                       f.library->event_set(handles[1]).value()};
  std::vector<long long> values(4);
  std::vector<SnapshotEntry> entries(2);
  // Fewer entries than sets.
  EXPECT_EQ(f.library
                ->read_many(sets, values,
                            std::span<SnapshotEntry>(entries).first(1))
                .error(),
            Error::kInvalid);
  // Values buffer too small for the second set's publication (set 0
  // never ran, so it needs no value slots; set 1 needs two).
  EXPECT_EQ(f.library
                ->read_many(sets, std::span<long long>(values).first(1),
                            entries)
                .error(),
            Error::kInvalid);
  // Span snapshot_all with zero entry capacity but live sets.
  std::size_t n_entries = 0;
  std::size_t n_values = 0;
  EXPECT_EQ(f.library
                ->snapshot_all(std::span<SnapshotEntry>{},
                               std::span<long long>(values), &n_entries,
                               &n_values)
                .error(),
            Error::kInvalid);
}

TEST(BatchedRead, SteadyStateIsAllocationFree) {
  SimFixture f(sim::make_saxpy(2'000), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> handles = make_sets(f, 8, &finals);
  EventSet* live = f.library->event_set(handles[0]).value();
  ASSERT_TRUE(live->start().ok());
  std::vector<EventSet*> sets;
  for (const int h : handles) {
    sets.push_back(f.library->event_set(h).value());
  }
  std::vector<long long> values(16);
  std::vector<SnapshotEntry> entries(8);
  std::vector<SnapshotEntry> vec_entries;
  std::vector<long long> vec_values;
  // Warm every path once so lazily-sized capacity fills up front.
  ASSERT_TRUE(f.library->read_many(sets, values, entries).ok());
  ASSERT_TRUE(f.library->read_many_handles(handles, values, entries).ok());
  ASSERT_TRUE(f.library->snapshot_all(vec_entries, vec_values).ok());

  constexpr int kIters = 1000;
  AllocationGuard guard;
  for (int i = 0; i < kIters; ++i) {
    (void)f.library->read_many(sets, values, entries);
    (void)f.library->read_many_handles(handles, values, entries);
    (void)f.library->snapshot_all(vec_entries, vec_values);
  }
  EXPECT_EQ(guard.delta(), 0u);
  EXPECT_TRUE(live->stop().ok());
}

TEST(BatchedRead, SteadyStateTakesNoLocks) {
  SimFixture f(sim::make_saxpy(2'000), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> handles = make_sets(f, 8, &finals);
  EventSet* live = f.library->event_set(handles[0]).value();
  ASSERT_TRUE(live->start().ok());
  std::vector<long long> values(16);
  std::vector<SnapshotEntry> entries;
  std::vector<long long> vec_values;
  std::array<long long, 2> v{};
  ASSERT_TRUE(f.library->snapshot_all(entries, vec_values).ok());

  const std::uint64_t locks_before = f.library->lock_acquisitions();
  for (int i = 0; i < 1000; ++i) {
    (void)live->read(v);
    (void)f.library->read_many_handles(handles, values,
                                       std::span<SnapshotEntry>(entries));
    (void)f.library->snapshot_all(entries, vec_values);
  }
  // The lock-free claim, as an equality: reads, batched reads, and
  // full-registry snapshots took zero registry or handle-table locks.
  EXPECT_EQ(f.library->lock_acquisitions(), locks_before);
  EXPECT_TRUE(live->stop().ok());
}

TEST(BatchedRegistry, SnapshotAllRacesHandleChurn) {
  SimFixture f(sim::make_saxpy(500), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> stable = make_sets(f, 4, &finals);
  constexpr int kChurnThreads = 4;
  constexpr int kChurnIters = 300;
  std::atomic<int> churn_failures{0};
  std::atomic<int> done{0};
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurnThreads; ++t) {
    churners.emplace_back([&] {
      for (int i = 0; i < kChurnIters; ++i) {
        auto handle = f.library->create_event_set();
        if (!handle.ok() ||
            !f.library->destroy_event_set(handle.value()).ok()) {
          churn_failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Main thread snapshots the registry throughout the churn.  Every
  // entry it sees must be internally consistent — a torn walk would
  // surface as a nonsense handle or value count.
  std::vector<SnapshotEntry> entries;
  std::vector<long long> values;
  int bad_entries = 0;
  while (done.load(std::memory_order_relaxed) < kChurnThreads) {
    if (!f.library->snapshot_all(entries, values).ok()) {
      ++bad_entries;
      break;
    }
    if (entries.size() < stable.size()) ++bad_entries;
    for (const SnapshotEntry& e : entries) {
      if (e.handle <= 0 || e.num_values > 2) ++bad_entries;
      if (e.status != Error::kOk && e.status != Error::kNotRunning) {
        ++bad_entries;
      }
    }
  }
  for (auto& th : churners) th.join();
  EXPECT_EQ(churn_failures.load(), 0);
  EXPECT_EQ(bad_entries, 0);
  EXPECT_EQ(f.library->num_event_sets(), stable.size());
  // With every reader quiescent, one more churn cycle reclaims the
  // entire graveyard.
  auto handle = f.library->create_event_set();
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(f.library->destroy_event_set(handle.value()).ok());
  EXPECT_EQ(f.library->retired_sets_pending(), 0u);
}

TEST(BatchedRegistry, DestroyDuringBatchedReadsDefersReclamation) {
  SimFixture f(sim::make_saxpy(500), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  std::vector<int> handles = make_sets(f, 8, &finals);
  constexpr int kReaders = 2;
  constexpr int kReads = 1500;

  // Readers need their own machines: batched reads register the thread,
  // which creates a CounterContext on its bound machine.
  std::vector<std::unique_ptr<sim::Machine>> machines;
  std::vector<sim::Workload> workloads;
  for (int t = 0; t < kReaders; ++t) {
    workloads.push_back(sim::make_saxpy(100));
    machines.push_back(std::make_unique<sim::Machine>(
        workloads.back().program, pmu::sim_x86().machine));
    if (workloads.back().setup) workloads.back().setup(*machines.back());
  }
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      f.substrate->bind_thread_machine(*machines[t]);
      std::vector<long long> values(16);
      std::vector<SnapshotEntry> entries(8);
      for (int i = 0; i < kReads; ++i) {
        if (!f.library->read_many_handles(handles, values, entries).ok()) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (const SnapshotEntry& e : entries) {
          // A destroyed handle must downgrade to a per-entry status,
          // never a crash or a torn value block.
          if (e.status != Error::kOk && e.status != Error::kNoEventSet &&
              e.status != Error::kNotRunning) {
            reader_failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      }
      (void)f.library->unregister_thread();
    });
  }
  // Destroy every set mid-flight, then recreate a fresh population.
  for (const int h : handles) {
    ASSERT_TRUE(f.library->destroy_event_set(h).ok());
  }
  const std::vector<int> fresh = make_sets(f, 4, nullptr);
  for (auto& th : readers) th.join();
  EXPECT_EQ(reader_failures.load(), 0);
  // All pins dropped: the next churn cycle must drain the graveyard.
  auto handle = f.library->create_event_set();
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(f.library->destroy_event_set(handle.value()).ok());
  EXPECT_EQ(f.library->retired_sets_pending(), 0u);
  EXPECT_EQ(f.library->num_event_sets(), fresh.size());
}

TEST(BatchedRegistry, ThreadSlotsAreReusedAcrossWaves) {
  SimFixture f(sim::make_saxpy(500), pmu::sim_x86(),
               {.charge_costs = false});
  std::vector<std::array<long long, 2>> finals;
  const std::vector<int> handles = make_sets(f, 2, &finals);
  // Three sequential waves of short-lived threads: every wave's slots
  // are erased (keys return to 0) and must be reclaimed by the next
  // wave, not appended — the registry's capacity is bounded by peak
  // concurrency, not by thread churn.
  for (int wave = 0; wave < 3; ++wave) {
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        std::vector<long long> values(8);
        std::vector<SnapshotEntry> entries(4);
        if (!f.library->register_thread().ok() ||
            !f.library->read_many_handles(handles, values, entries).ok() ||
            !f.library->unregister_thread().ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      });
      threads.back().join();  // sequential: exercises reuse, not growth
    }
    EXPECT_EQ(failures.load(), 0) << "wave " << wave;
  }
  // Only the main thread (registered by make_sets' start/stop) remains.
  EXPECT_EQ(f.library->num_threads(), 1u);
  // The registry still serves batched reads after all the churn.
  std::vector<SnapshotEntry> entries;
  std::vector<long long> values;
  ASSERT_TRUE(f.library->snapshot_all(entries, values).ok());
  EXPECT_EQ(entries.size(), handles.size());
}

}  // namespace
}  // namespace papirepro::papi
