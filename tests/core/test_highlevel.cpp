#include "core/highlevel.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

TEST(HighLevel, StartReadStopCounters) {
  SimFixture f(sim::make_saxpy(5'000), pmu::sim_x86(),
               {.charge_costs = false});
  HighLevel hl(*f.library);
  EXPECT_EQ(hl.num_counters(), 4);

  const EventId events[] = {EventId::preset(Preset::kFmaIns),
                            EventId::preset(Preset::kTotIns)};
  ASSERT_TRUE(hl.start_counters(events).ok());
  f.machine->run(10'000);
  long long values[2] = {};
  ASSERT_TRUE(hl.read_counters(values).ok());
  EXPECT_GT(values[0], 0);
  // read_counters resets: a fresh read right away is small.
  long long again[2] = {};
  ASSERT_TRUE(hl.read_counters(again).ok());
  EXPECT_LT(again[0], values[0]);

  f.machine->run();
  long long fin[2] = {};
  ASSERT_TRUE(hl.stop_counters(fin).ok());
  // Sum of all reads equals the total.
  EXPECT_EQ(values[0] + again[0] + fin[0], 5'000);
}

TEST(HighLevel, AccumCounters) {
  SimFixture f(sim::make_saxpy(5'000), pmu::sim_x86(),
               {.charge_costs = false});
  HighLevel hl(*f.library);
  const EventId events[] = {EventId::preset(Preset::kFmaIns)};
  ASSERT_TRUE(hl.start_counters(events).ok());
  long long acc[1] = {100};  // accum adds into existing values
  f.machine->run(5'000);
  ASSERT_TRUE(hl.accum_counters(acc).ok());
  f.machine->run();
  ASSERT_TRUE(hl.accum_counters(acc).ok());
  long long fin[1] = {};
  ASSERT_TRUE(hl.stop_counters(fin).ok());
  EXPECT_EQ(acc[0] + fin[0], 100 + 5'000);
}

TEST(HighLevel, StartTwiceRejected) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  HighLevel hl(*f.library);
  const EventId events[] = {EventId::preset(Preset::kTotIns)};
  ASSERT_TRUE(hl.start_counters(events).ok());
  EXPECT_EQ(hl.start_counters(events).error(), Error::kIsRunning);
  long long v[1];
  ASSERT_TRUE(hl.stop_counters(v).ok());
}

TEST(HighLevel, FlopsNormalizesFmaOnX86) {
  // saxpy does n FMAs; natively FP_OPS_RETIRED counts n, but PAPI_flops
  // must report 2n.
  SimFixture f(sim::make_saxpy(100'000), pmu::sim_x86(),
               {.charge_costs = false});
  HighLevel hl(*f.library);
  auto first = hl.flops();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().flops, 0);
  f.machine->run();
  auto info = hl.flops();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().flops, 200'000);
  EXPECT_GT(info.value().real_time_s, 0.0);
  EXPECT_GT(info.value().mflops, 0.0);
}

TEST(HighLevel, FlopsExcludesRoundingInstructionsOnPower3) {
  // fcvt_mixed does n fadds + n converts.  Raw PM_FPU_INS says 2n; the
  // flops call reports n (the Section 4 normalization).
  SimFixture f(sim::make_fcvt_mixed(50'000), pmu::sim_power3(),
               {.charge_costs = false});
  HighLevel hl(*f.library);
  ASSERT_TRUE(hl.flops().ok());
  f.machine->run();
  auto info = hl.flops();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().flops, 50'000);
}

TEST(HighLevel, FlopsCountsFmaTwiceOnPower3) {
  SimFixture f(sim::make_saxpy(40'000), pmu::sim_power3(),
               {.charge_costs = false});
  HighLevel hl(*f.library);
  ASSERT_TRUE(hl.flops().ok());
  f.machine->run();
  EXPECT_EQ(hl.flops().value().flops, 80'000);
}

TEST(HighLevel, IpcReportsPlausibleRatio) {
  SimFixture f(sim::make_saxpy(50'000), pmu::sim_x86(),
               {.charge_costs = false});
  HighLevel hl(*f.library);
  ASSERT_TRUE(hl.ipc().ok());
  f.machine->run();
  auto info = hl.ipc();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().instructions,
            static_cast<long long>(f.machine->retired()));
  EXPECT_GT(info.value().ipc, 0.1);
  EXPECT_LE(info.value().ipc, 1.0);  // scalar machine: IPC <= 1
}

TEST(HighLevel, FlopsAndIpcAreExclusive) {
  SimFixture f(sim::make_saxpy(1'000), pmu::sim_x86());
  HighLevel hl(*f.library);
  ASSERT_TRUE(hl.flops().ok());
  EXPECT_EQ(hl.ipc().error(), Error::kConflict);
}

TEST(HighLevel, MixingHighAndLowLevelRespectsOneRunningSet) {
  SimFixture f(sim::make_saxpy(1'000), pmu::sim_x86());
  HighLevel hl(*f.library);
  const EventId events[] = {EventId::preset(Preset::kTotIns)};
  ASSERT_TRUE(hl.start_counters(events).ok());
  EventSet& low = f.new_set();
  ASSERT_TRUE(low.add_preset(Preset::kTotCyc).ok());
  EXPECT_EQ(low.start().error(), Error::kIsRunning);
  long long v[1];
  ASSERT_TRUE(hl.stop_counters(v).ok());
  EXPECT_TRUE(low.start().ok());
  ASSERT_TRUE(low.stop().ok());
}

}  // namespace
}  // namespace papirepro::papi
