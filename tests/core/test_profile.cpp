#include "core/profile.h"

#include <gtest/gtest.h>

namespace papirepro::papi {
namespace {

TEST(ProfileBuffer, DefaultScaleOneBucketPerInstruction) {
  ProfileBuffer buf(0x400000, 400);  // 100 instructions
  EXPECT_EQ(buf.num_buckets(), 100u);
  EXPECT_EQ(buf.bucket_address(0), 0x400000u);
  EXPECT_EQ(buf.bucket_address(1), 0x400004u);
}

TEST(ProfileBuffer, RecordBucketsPc) {
  ProfileBuffer buf(0x400000, 64);
  buf.record(0x400000);
  buf.record(0x400004);
  buf.record(0x400004);
  EXPECT_EQ(buf.buckets()[0], 1u);
  EXPECT_EQ(buf.buckets()[1], 2u);
  EXPECT_EQ(buf.total_samples(), 3u);
  EXPECT_EQ(buf.out_of_range_samples(), 0u);
}

TEST(ProfileBuffer, OutOfRangeCounted) {
  ProfileBuffer buf(0x400000, 64);
  buf.record(0x3fffff);          // below base
  buf.record(0x400000 + 64);     // one past the end
  EXPECT_EQ(buf.total_samples(), 2u);
  EXPECT_EQ(buf.out_of_range_samples(), 2u);
}

TEST(ProfileBuffer, Svr4ScaleHalvesBucketCount) {
  // scale 0x2000 => 8 bytes (2 instructions) per bucket.
  ProfileBuffer buf(0x400000, 64, 0x2000);
  EXPECT_EQ(buf.num_buckets(), 8u);
  buf.record(0x400000);
  buf.record(0x400004);  // same bucket
  EXPECT_EQ(buf.buckets()[0], 2u);
}

TEST(ProfileBuffer, FullByteScale) {
  // scale 0x10000 => one bucket per byte.
  ProfileBuffer buf(0x1000, 16, 0x10000);
  EXPECT_EQ(buf.num_buckets(), 16u);
  buf.record(0x1003);
  EXPECT_EQ(buf.buckets()[3], 1u);
}

TEST(ProfileBuffer, BucketOf) {
  ProfileBuffer buf(0x400000, 400);
  EXPECT_EQ(buf.bucket_of(0x400000), 0);
  EXPECT_EQ(buf.bucket_of(0x400007), 1);
  EXPECT_EQ(buf.bucket_of(0x3fffff), -1);
  EXPECT_EQ(buf.bucket_of(0x400000 + 400), -1);
}

TEST(ProfileBuffer, Reset) {
  ProfileBuffer buf(0x400000, 64);
  buf.record(0x400000);
  buf.record(0x500000);
  buf.reset();
  EXPECT_EQ(buf.total_samples(), 0u);
  EXPECT_EQ(buf.out_of_range_samples(), 0u);
  EXPECT_EQ(buf.buckets()[0], 0u);
}

}  // namespace
}  // namespace papirepro::papi
