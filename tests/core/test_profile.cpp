#include "core/profile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace papirepro::papi {
namespace {

constexpr std::uint32_t kMaxBucket =
    std::numeric_limits<std::uint32_t>::max();

TEST(ProfileBuffer, DefaultScaleOneBucketPerInstruction) {
  ProfileBuffer buf(0x400000, 400);  // 100 instructions
  EXPECT_EQ(buf.num_buckets(), 100u);
  EXPECT_EQ(buf.bucket_address(0), 0x400000u);
  EXPECT_EQ(buf.bucket_address(1), 0x400004u);
}

TEST(ProfileBuffer, RecordBucketsPc) {
  ProfileBuffer buf(0x400000, 64);
  buf.record(0x400000);
  buf.record(0x400004);
  buf.record(0x400004);
  EXPECT_EQ(buf.buckets()[0], 1u);
  EXPECT_EQ(buf.buckets()[1], 2u);
  EXPECT_EQ(buf.total_samples(), 3u);
  EXPECT_EQ(buf.out_of_range_samples(), 0u);
}

TEST(ProfileBuffer, OutOfRangeCounted) {
  ProfileBuffer buf(0x400000, 64);
  buf.record(0x3fffff);          // below base
  buf.record(0x400000 + 64);     // one past the end
  EXPECT_EQ(buf.total_samples(), 2u);
  EXPECT_EQ(buf.out_of_range_samples(), 2u);
}

TEST(ProfileBuffer, Svr4ScaleHalvesBucketCount) {
  // scale 0x2000 => 8 bytes (2 instructions) per bucket.
  ProfileBuffer buf(0x400000, 64, 0x2000);
  EXPECT_EQ(buf.num_buckets(), 8u);
  buf.record(0x400000);
  buf.record(0x400004);  // same bucket
  EXPECT_EQ(buf.buckets()[0], 2u);
}

TEST(ProfileBuffer, FullByteScale) {
  // scale 0x10000 => one bucket per byte.
  ProfileBuffer buf(0x1000, 16, 0x10000);
  EXPECT_EQ(buf.num_buckets(), 16u);
  buf.record(0x1003);
  EXPECT_EQ(buf.buckets()[3], 1u);
}

TEST(ProfileBuffer, BucketOf) {
  ProfileBuffer buf(0x400000, 400);
  EXPECT_EQ(buf.bucket_of(0x400000), 0);
  EXPECT_EQ(buf.bucket_of(0x400007), 1);
  EXPECT_EQ(buf.bucket_of(0x3fffff), -1);
  EXPECT_EQ(buf.bucket_of(0x400000 + 400), -1);
}

TEST(ProfileBuffer, Reset) {
  ProfileBuffer buf(0x400000, 64);
  buf.record(0x400000);
  buf.record(0x500000);
  buf.reset();
  EXPECT_EQ(buf.total_samples(), 0u);
  EXPECT_EQ(buf.out_of_range_samples(), 0u);
  EXPECT_EQ(buf.buckets()[0], 0u);
}

TEST(ProfileBuffer, ValidScaleBounds) {
  EXPECT_FALSE(ProfileBuffer::valid_scale(0));
  EXPECT_TRUE(ProfileBuffer::valid_scale(1));
  EXPECT_TRUE(ProfileBuffer::valid_scale(0x2));
  EXPECT_TRUE(ProfileBuffer::valid_scale(ProfileBuffer::kDefaultScale));
  EXPECT_TRUE(ProfileBuffer::valid_scale(0x10000));
  EXPECT_FALSE(ProfileBuffer::valid_scale(0x10001));
  EXPECT_FALSE(ProfileBuffer::valid_scale(0x20000));
}

TEST(ProfileBuffer, InvalidScaleClampedToDefault) {
  // The old code kept whatever it was given and divided by
  // 0x10000/scale == 0 in release builds; now an invalid scale degrades
  // to the default instead of crashing.
  ProfileBuffer zero(0x400000, 400, 0);
  EXPECT_EQ(zero.scale(), ProfileBuffer::kDefaultScale);
  EXPECT_EQ(zero.num_buckets(), 100u);
  zero.record(0x400000);
  EXPECT_EQ(zero.total_samples(), 1u);

  ProfileBuffer huge(0x400000, 400, 0x20000);
  EXPECT_EQ(huge.scale(), ProfileBuffer::kDefaultScale);
  EXPECT_EQ(huge.num_buckets(), 100u);
}

TEST(ProfileBuffer, NonDividingScaleUsesSvr4Mapping) {
  // scale 0x3000 = 12288/65536 buckets per byte: bucket boundaries do
  // not fall on whole bytes, so the exact SVR4 fixed-point form
  // (pc - base) * scale >> 16 is observable.
  ProfileBuffer buf(0x400000, 64, 0x3000);
  // Highest offset is 63: (63 * 0x3000) >> 16 = 11, so 12 buckets.
  EXPECT_EQ(buf.num_buckets(), 12u);
  EXPECT_EQ(buf.bucket_of(0x400000 + 11), 2);  // (11 * 0x3000) >> 16
  buf.record(0x400000 + 11);
  EXPECT_EQ(buf.buckets()[2], 1u);
  // bucket_address is the left inverse of bucket_of.
  for (std::size_t i = 0; i < buf.num_buckets(); ++i) {
    EXPECT_EQ(buf.bucket_of(buf.bucket_address(i)),
              static_cast<std::int64_t>(i))
        << "bucket " << i;
  }
}

TEST(ProfileBuffer, BucketsSaturateInsteadOfWrapping) {
  ProfileBuffer buf(0x400000, 64);
  // Prime the bucket near the ceiling (counting up 2^32 times would
  // take minutes); recording has quiesced, so the write is safe.
  const_cast<std::uint32_t&>(buf.buckets()[0]) = kMaxBucket - 1;
  buf.record(0x400000);  // reaches the ceiling
  EXPECT_EQ(buf.buckets()[0], kMaxBucket);
  EXPECT_EQ(buf.saturated_buckets(), 1u);
  EXPECT_EQ(buf.saturated_samples(), 0u);
  buf.record(0x400000);  // would wrap in the old code
  buf.record(0x400000);
  EXPECT_EQ(buf.buckets()[0], kMaxBucket);
  EXPECT_EQ(buf.saturated_buckets(), 1u);
  EXPECT_EQ(buf.saturated_samples(), 2u);
  // The lost samples still count toward the total, so drop accounting
  // stays exact.
  EXPECT_EQ(buf.total_samples(), 3u);
}

TEST(ProfileBuffer, SnapshotMatchesAccessors) {
  ProfileBuffer buf(0x400000, 64);
  buf.record(0x400000);
  buf.record(0x400004);
  buf.record(0x500000);  // out of range
  const ProfileBuffer::Snapshot snap = buf.snapshot();
  EXPECT_EQ(snap.total, buf.total_samples());
  EXPECT_EQ(snap.out_of_range, buf.out_of_range_samples());
  EXPECT_EQ(snap.saturated_buckets, 0u);
  EXPECT_EQ(snap.saturated_samples, 0u);
  ASSERT_EQ(snap.buckets.size(), buf.num_buckets());
  EXPECT_EQ(snap.buckets, buf.buckets());
}

TEST(ProfileBuffer, ResetClearsSaturationCounters) {
  ProfileBuffer buf(0x400000, 64);
  const_cast<std::uint32_t&>(buf.buckets()[0]) = kMaxBucket;
  buf.record(0x400000);
  EXPECT_EQ(buf.saturated_samples(), 1u);
  buf.reset();
  EXPECT_EQ(buf.saturated_buckets(), 0u);
  EXPECT_EQ(buf.saturated_samples(), 0u);
  EXPECT_EQ(buf.buckets()[0], 0u);
}

}  // namespace
}  // namespace papirepro::papi
