// Aggregation-service reduction semantics: a sequentially computed
// oracle over randomized rank populations must match the collector's
// hierarchical (rank -> node -> cluster) reduction exactly for
// min/max/sum/avg and within the histogram's documented 12.5 % relative
// error for percentiles; steady-state ingest and reduce must allocate
// nothing; ranks whose publication stamps stop advancing must age out;
// and the seqlock snapshot region must serve consistent (never torn)
// views to a reader thread racing the publisher — the CI TSan shard
// runs these suites (Aggregation*) to enforce the race-freedom half.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "aggregate/collector.h"
#include "aggregate/histogram.h"
#include "aggregate/shm_region.h"
#include "aggregate/wire.h"
#include "common/rng.h"
#include "core/eventset.h"
#include "test_util.h"

namespace {

using namespace papirepro::aggregate;
namespace papi = papirepro::papi;
using papirepro::Error;
using papirepro::Xoshiro256;
using papirepro::test::AllocationGuard;

/// Encodes one rank's frame carrying `values` as a single entry.
void encode_rank(std::uint32_t rank, std::uint64_t pub_cycles,
                 std::span<const long long> values,
                 std::vector<std::uint8_t>& out) {
  papi::SnapshotEntry e;
  e.handle = static_cast<int>(rank) + 1;
  e.status = Error::kOk;
  e.flags = papi::read_flag::kPublished;
  e.pub_cycles = pub_cycles;
  e.first_value = 0;
  e.num_values = static_cast<std::uint32_t>(values.size());
  ASSERT_TRUE(encode_frame(rank, pub_cycles, {&e, 1}, values, out));
}

TEST(AggregationCollector, ReductionMatchesSequentialOracle) {
  constexpr std::uint32_t kRanks = 257;  // deliberately not node-aligned
  constexpr std::uint32_t kMetrics = 3;
  CollectorConfig cfg;
  cfg.max_ranks = kRanks;
  cfg.ranks_per_node = 32;
  cfg.num_metrics = kMetrics;
  Collector collector(cfg);

  Xoshiro256 rng(7);
  std::vector<std::vector<long long>> per_metric(kMetrics);
  std::vector<std::uint8_t> buf;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    long long values[kMetrics];
    for (std::uint32_t m = 0; m < kMetrics; ++m) {
      values[m] = static_cast<long long>(rng.next() % 1'000'000);
      per_metric[m].push_back(values[m]);
    }
    encode_rank(r, 100 + r, values, buf);
  }
  ASSERT_EQ(collector.ingest(buf), kRanks);

  const ClusterReduction& red = collector.reduce(10'000);
  EXPECT_EQ(red.ranks_live, kRanks);
  EXPECT_EQ(red.ranks_stale, 0u);
  ASSERT_EQ(red.num_metrics, kMetrics);
  for (std::uint32_t m = 0; m < kMetrics; ++m) {
    std::vector<long long> sorted = per_metric[m];
    std::sort(sorted.begin(), sorted.end());
    long long sum = 0;
    for (const long long v : sorted) sum += v;
    const MetricStats& ms = red.metrics[m];
    EXPECT_EQ(ms.min, sorted.front()) << "metric " << m;
    EXPECT_EQ(ms.max, sorted.back()) << "metric " << m;
    EXPECT_EQ(ms.sum, sum) << "metric " << m;
    EXPECT_EQ(ms.count, kRanks) << "metric " << m;
    EXPECT_DOUBLE_EQ(ms.avg, static_cast<double>(sum) / kRanks);
    // Percentiles come from the log-linear histogram: the reported
    // representative must sit within its documented 12.5 % of the exact
    // order statistic.
    const struct {
      double q;
      std::uint64_t got;
    } quantiles[] = {{0.50, ms.p50}, {0.95, ms.p95}, {0.99, ms.p99}};
    for (const auto& [q, got] : quantiles) {
      auto idx = static_cast<std::size_t>(q * kRanks);
      if (idx >= sorted.size()) idx = sorted.size() - 1;
      const auto exact = static_cast<double>(sorted[idx]);
      EXPECT_NEAR(static_cast<double>(got), exact, exact * 0.125 + 1.0)
          << "metric " << m << " q " << q;
    }
  }

  // Node partials: ranks fold into ceil(257/32) = 9 nodes; node sums
  // must re-add to the cluster sum.
  const auto nodes = collector.nodes();
  ASSERT_EQ(nodes.size(), (kRanks + 31) / 32);
  std::uint32_t node_ranks = 0;
  long long node_sum0 = 0;
  for (const NodeStats& n : nodes) {
    node_ranks += n.ranks;
    node_sum0 += n.metrics[0].sum;
  }
  EXPECT_EQ(node_ranks, kRanks);
  EXPECT_EQ(node_sum0, red.metrics[0].sum);
}

TEST(AggregationCollector, SteadyStateIngestAndReduceAllocateNothing) {
  CollectorConfig cfg;
  cfg.max_ranks = 64;
  cfg.num_metrics = 2;
  Collector collector(cfg);

  std::vector<std::uint8_t> buf;
  for (std::uint32_t r = 0; r < 64; ++r) {
    const long long values[2] = {static_cast<long long>(r) * 10, 5};
    encode_rank(r, 100, values, buf);
  }
  // Warm-up pass, then the guarded steady-state passes.
  ASSERT_EQ(collector.ingest(buf), 64u);
  collector.reduce(200);

  AllocationGuard guard;
  for (int round = 0; round < 16; ++round) {
    ASSERT_EQ(collector.ingest(buf), 64u);
    collector.reduce(300 + round);
  }
  EXPECT_EQ(guard.delta(), 0u)
      << "steady-state ingest/reduce must not touch the heap";
}

TEST(AggregationCollector, StagnantRanksAgeOutAndRecover) {
  CollectorConfig cfg;
  cfg.max_ranks = 4;
  cfg.num_metrics = 1;
  cfg.stale_reduce_rounds = 2;
  Collector collector(cfg);

  const long long v0[1] = {100};
  const long long v1[1] = {200};
  std::vector<std::uint8_t> buf;
  encode_rank(0, 10, v0, buf);
  encode_rank(1, 10, v1, buf);
  ASSERT_EQ(collector.ingest(buf), 2u);
  EXPECT_EQ(collector.reduce(20).ranks_live, 2u);

  // Rank 0 keeps publishing (stamp advances); rank 1 goes quiet.  Its
  // stamp stagnates for two consecutive reduces and is aged out.
  for (std::uint64_t round = 1; round <= 2; ++round) {
    buf.clear();
    encode_rank(0, 10 + round, v0, buf);
    ASSERT_EQ(collector.ingest(buf), 1u);
    const ClusterReduction& red = collector.reduce(20 + round);
    if (round < 2) {
      EXPECT_EQ(red.ranks_live, 2u) << "round " << round;
    } else {
      EXPECT_EQ(red.ranks_live, 1u);
      EXPECT_EQ(red.ranks_stale, 1u);
      // The aged-out rank's values no longer shape the reduction.
      EXPECT_EQ(red.metrics[0].max, 100);
      EXPECT_EQ(red.metrics[0].count, 1u);
    }
  }

  // The rank resumes publishing: one advancing stamp revives it.
  buf.clear();
  encode_rank(1, 99, v1, buf);
  ASSERT_EQ(collector.ingest(buf), 1u);
  const ClusterReduction& revived = collector.reduce(100);
  EXPECT_EQ(revived.ranks_live, 2u);
  EXPECT_EQ(revived.metrics[0].max, 200);
}

TEST(AggregationCollector, DistantStampsAgeOutByMaxAge) {
  CollectorConfig cfg;
  cfg.max_ranks = 2;
  cfg.num_metrics = 1;
  cfg.max_age_cycles = 50;
  Collector collector(cfg);

  const long long v[1] = {7};
  std::vector<std::uint8_t> buf;
  encode_rank(0, 100, v, buf);
  ASSERT_EQ(collector.ingest(buf), 1u);
  EXPECT_EQ(collector.reduce(120).ranks_live, 1u);  // age 20 <= 50
  EXPECT_EQ(collector.reduce(200).ranks_live, 0u);  // age 100 > 50
  EXPECT_EQ(collector.cluster().ranks_stale, 1u);
}

TEST(AggregationCollector, TopRanksOrdersDescending) {
  CollectorConfig cfg;
  cfg.max_ranks = 16;
  cfg.num_metrics = 1;
  Collector collector(cfg);
  std::vector<std::uint8_t> buf;
  for (std::uint32_t r = 0; r < 16; ++r) {
    // Values 0, 70, 140, ... — rank 15 is the largest.
    const long long values[1] = {static_cast<long long>(r) * 70};
    encode_rank(r, 10, values, buf);
  }
  ASSERT_EQ(collector.ingest(buf), 16u);
  collector.reduce(20);

  RankValue top[4];
  ASSERT_EQ(collector.top_ranks(0, top), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(top[i].rank, 15u - i);
    EXPECT_EQ(top[i].value, (15 - i) * 70);
  }
  // Metric out of range yields nothing.
  EXPECT_EQ(collector.top_ranks(5, top), 0u);
}

TEST(AggregationCollector, MalformedTailNeverHalfUpdatesARank) {
  CollectorConfig cfg;
  cfg.max_ranks = 4;
  cfg.num_metrics = 2;
  Collector collector(cfg);

  const long long good[2] = {11, 22};
  std::vector<std::uint8_t> buf;
  encode_rank(2, 10, good, buf);
  ASSERT_EQ(collector.ingest(buf), 1u);

  // Same rank again, but the frame's value bytes are corrupted into an
  // overlong varint: the decode fails mid-frame and the slot must keep
  // the previous round's committed values untouched.
  std::vector<std::uint8_t> bad;
  const long long worse[2] = {33, 44};
  encode_rank(2, 20, worse, bad);
  for (std::size_t i = bad.size() - 3; i < bad.size(); ++i) {
    bad[i] = 0xFF;
  }
  EXPECT_EQ(collector.ingest(bad), 0u);
  EXPECT_EQ(collector.stats().decode_errors, 1u);

  const ClusterReduction& red = collector.reduce(30);
  EXPECT_EQ(red.ranks_live, 1u);
  EXPECT_EQ(red.metrics[0].min, 11);
  EXPECT_EQ(red.metrics[1].min, 22);
}

TEST(AggregationCollector, ValuesBeyondMetricCapCountedNotSilentlyLost) {
  CollectorConfig cfg;
  cfg.max_ranks = 2;
  cfg.num_metrics = 2;
  Collector collector(cfg);
  const long long values[5] = {1, 2, 3, 4, 5};
  std::vector<std::uint8_t> buf;
  encode_rank(0, 10, values, buf);
  ASSERT_EQ(collector.ingest(buf), 1u);
  EXPECT_EQ(collector.stats().values_dropped, 3u);
  const ClusterReduction& red = collector.reduce(20);
  EXPECT_EQ(red.metrics[0].min, 1);
  EXPECT_EQ(red.metrics[1].min, 2);
}

/// Encodes one rank-run frame: entry i carries the single set of rank
/// `base + i` with one value `base_value + 10 * i`.
void encode_rank_run(std::uint32_t base, std::uint32_t count,
                     long long base_value,
                     std::vector<std::uint8_t>& out) {
  std::vector<papi::SnapshotEntry> entries(count);
  std::vector<long long> values(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    entries[i].handle = static_cast<int>(base + i) + 1;
    entries[i].status = Error::kOk;
    entries[i].flags = papi::read_flag::kPublished;
    entries[i].pub_cycles = 500 + i;
    entries[i].first_value = i;
    entries[i].num_values = 1;
    values[i] = base_value + 10 * static_cast<long long>(i);
  }
  ASSERT_TRUE(encode_frame(base, 500, entries, values, out,
                           kFrameModeRankRun));
}

TEST(AggregationCollector, RankRunFrameMapsEntriesToConsecutiveRanks) {
  CollectorConfig cfg;
  cfg.max_ranks = 8;
  cfg.ranks_per_node = 4;
  cfg.num_metrics = 1;
  Collector collector(cfg);

  std::vector<std::uint8_t> buf;
  encode_rank_run(/*base=*/2, /*count=*/4, /*base_value=*/100, buf);
  ASSERT_EQ(collector.ingest(buf), 1u);
  EXPECT_EQ(collector.stats().entries, 4u);

  const ClusterReduction& red = collector.reduce(1'000);
  EXPECT_EQ(red.ranks_live, 4u);
  EXPECT_EQ(red.metrics[0].min, 100);
  EXPECT_EQ(red.metrics[0].max, 130);

  // Entry i landed on rank base + i: the top ranking reads back the
  // exact rank -> value mapping, descending.
  RankValue rows[4];
  ASSERT_EQ(collector.top_ranks(0, rows), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rows[i].rank, 5u - i) << "row " << i;
    EXPECT_EQ(rows[i].value, 130 - 10 * static_cast<long long>(i));
    EXPECT_EQ(rows[i].pub_cycles, 500u + (3 - i));
  }
}

TEST(AggregationCollector, RankRunPastMaxRanksDropsOnlyTheOverflow) {
  CollectorConfig cfg;
  cfg.max_ranks = 8;
  cfg.ranks_per_node = 4;
  cfg.num_metrics = 1;
  Collector collector(cfg);

  std::vector<std::uint8_t> buf;
  encode_rank_run(/*base=*/6, /*count=*/4, /*base_value=*/0, buf);
  ASSERT_EQ(collector.ingest(buf), 1u);
  EXPECT_EQ(collector.stats().ranks_dropped, 2u);  // ranks 8 and 9
  const ClusterReduction& red = collector.reduce(1'000);
  EXPECT_EQ(red.ranks_live, 2u);  // ranks 6 and 7 landed
}

TEST(AggregationCollector, RankRunMalformedTailKeepsCleanPrefix) {
  CollectorConfig cfg;
  cfg.max_ranks = 8;
  cfg.ranks_per_node = 4;
  cfg.num_metrics = 1;
  Collector collector(cfg);

  std::vector<std::uint8_t> buf;
  encode_rank_run(/*base=*/0, /*count=*/3, /*base_value=*/100, buf);
  // Corrupt the last entry's final value byte into a varint that runs
  // past the entry end.  Entries commit individually in a rank run:
  // the clean prefix must survive, the frame must still be rejected.
  buf.back() |= 0x80;
  EXPECT_EQ(collector.ingest(buf), 0u);
  EXPECT_EQ(collector.stats().decode_errors, 1u);
  EXPECT_EQ(collector.stats().frames, 0u);
  const ClusterReduction& red = collector.reduce(1'000);
  EXPECT_EQ(red.ranks_live, 2u);  // ranks 0 and 1 committed before the tail
  EXPECT_EQ(red.metrics[0].min, 100);
  EXPECT_EQ(red.metrics[0].max, 110);
}

TEST(AggregationHistogram, ExactBelowEightBoundedAbove) {
  FixedHistogram h;
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(FixedHistogram::bucket_value(FixedHistogram::bucket_index(v)),
              v);
  }
  // Above the exact range the representative is a lower bound within
  // 12.5 % of the recorded value.
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = 8 + (rng.next() >> (rng.next() % 56));
    const std::uint64_t rep =
        FixedHistogram::bucket_value(FixedHistogram::bucket_index(v));
    EXPECT_LE(rep, v);
    EXPECT_GT(static_cast<double>(rep), static_cast<double>(v) * 0.875 - 1);
  }
  // Quantile walk: 100 observations of value i -> p50 lands mid-range.
  h.reset();
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_EQ(h.total(), 100u);
  const std::uint64_t p50 = h.quantile(0.50);
  EXPECT_GE(p50, 40u);
  EXPECT_LE(p50, 56u);
  EXPECT_EQ(h.quantile(0.0), 0u);
}

TEST(AggregationRegion, SeqlockReaderNeverSeesTornViews) {
  SharedSnapshotRegion region;
  ASSERT_TRUE(region.valid());

  // Publisher writes views whose every field encodes the same round
  // number; any torn read mixes rounds and trips the checks.
  constexpr int kRounds = 20'000;
  std::thread publisher([&region] {
    ClusterReduction r;
    r.num_metrics = 2;
    for (int round = 1; round <= kRounds; ++round) {
      r.reduce_count = static_cast<std::uint64_t>(round);
      r.now_cycles = static_cast<std::uint64_t>(round) * 3;
      r.ranks_live = static_cast<std::uint32_t>(round % 1024);
      r.ranks_stale = static_cast<std::uint32_t>(round % 7);
      for (std::uint32_t m = 0; m < 2; ++m) {
        r.metrics[m].min = round;
        r.metrics[m].max = round * 2;
        r.metrics[m].sum = round * 10;
        r.metrics[m].avg = static_cast<double>(round);
        r.metrics[m].count = static_cast<std::uint64_t>(round);
        r.metrics[m].p99 = static_cast<std::uint64_t>(round) + m;
      }
      region.publish(r);
    }
  });

  RegionSnapshot snap;
  std::uint64_t last_round = 0;
  std::uint64_t successes = 0;
  while (last_round < kRounds) {
    if (!region.read_into(snap)) continue;
    if (snap.reduce_count == 0) continue;  // nothing published yet
    const auto round = snap.reduce_count;
    ASSERT_GE(round, last_round) << "publications must be monotonic";
    ASSERT_EQ(snap.now_cycles, round * 3);
    ASSERT_EQ(snap.num_metrics, 2u);
    for (std::uint32_t m = 0; m < 2; ++m) {
      ASSERT_EQ(snap.metrics[m].min, static_cast<long long>(round));
      ASSERT_EQ(snap.metrics[m].max, static_cast<long long>(round) * 2);
      ASSERT_EQ(snap.metrics[m].sum, static_cast<long long>(round) * 10);
      ASSERT_DOUBLE_EQ(snap.metrics[m].avg, static_cast<double>(round));
      ASSERT_EQ(snap.metrics[m].p99, round + m);
    }
    last_round = round;
    ++successes;
  }
  publisher.join();
  EXPECT_GT(successes, 0u);
  EXPECT_EQ(last_round, kRounds);
}

TEST(AggregationRegion, CollectorReductionSurvivesRegionRoundTrip) {
  CollectorConfig cfg;
  cfg.max_ranks = 8;
  cfg.num_metrics = 2;
  Collector collector(cfg);
  std::vector<std::uint8_t> buf;
  for (std::uint32_t r = 0; r < 8; ++r) {
    const long long values[2] = {static_cast<long long>(r) + 1, 50};
    encode_rank(r, 10, values, buf);
  }
  ASSERT_EQ(collector.ingest(buf), 8u);
  const ClusterReduction& red = collector.reduce(100);

  SharedSnapshotRegion region;
  region.publish(red);
  RegionSnapshot snap;
  ASSERT_TRUE(region.read_into(snap));
  EXPECT_EQ(snap.reduce_count, red.reduce_count);
  EXPECT_EQ(snap.ranks_live, 8u);
  EXPECT_EQ(snap.metrics[0].min, 1);
  EXPECT_EQ(snap.metrics[0].max, 8);
  EXPECT_EQ(snap.metrics[0].sum, 36);
  EXPECT_DOUBLE_EQ(snap.metrics[0].avg, 4.5);
  EXPECT_EQ(snap.metrics[1].min, 50);
  EXPECT_EQ(snap.metrics[1].max, 50);
}

}  // namespace
