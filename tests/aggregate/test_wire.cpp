// Wire-format oracle for the aggregation service: every frame that
// encode_frame produces must decode back bit-identically (headers,
// statuses, flags, stamps, zigzagged values over the full long long
// range), and every malformed input — truncation at any byte, bad
// magic/version, oversized or impossible declared lengths, overlong
// varints — must surface a clean WireError without the reader ever
// touching a byte outside the buffer (the CI ASan shard enforces the
// no-OOB half of that claim).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "aggregate/wire.h"
#include "common/rng.h"
#include "core/eventset.h"

namespace {

using namespace papirepro::aggregate;
namespace papi = papirepro::papi;
using papirepro::Error;
using papirepro::Xoshiro256;

/// One randomized rank snapshot: entries plus the shared value buffer,
/// exercising every status/flag/value shape the library can publish.
struct RandomSnapshot {
  std::vector<papi::SnapshotEntry> entries;
  std::vector<long long> values;
};

RandomSnapshot make_random_snapshot(Xoshiro256& rng,
                                    std::size_t num_entries) {
  static constexpr Error kStatuses[] = {
      Error::kOk,          Error::kOk,       Error::kOk,
      Error::kNotRunning,  Error::kNoEventSet,
      Error::kComponentQuarantined};
  static constexpr std::uint32_t kFlagSets[] = {
      papi::read_flag::kValid,
      papi::read_flag::kStale,
      papi::read_flag::kPublished,
      papi::read_flag::kPublished | papi::read_flag::kStale,
      papi::read_flag::kQuarantined | papi::read_flag::kStale,
      papi::read_flag::kSuspect | papi::read_flag::kNoData};
  RandomSnapshot snap;
  for (std::size_t i = 0; i < num_entries; ++i) {
    papi::SnapshotEntry e;
    e.handle = static_cast<int>(rng.next() % 100'000);
    e.status = kStatuses[rng.next() % std::size(kStatuses)];
    e.flags = kFlagSets[rng.next() % std::size(kFlagSets)];
    e.pub_cycles = rng.next() >> (rng.next() % 64);
    e.first_value = static_cast<std::uint32_t>(snap.values.size());
    // kNoEventSet mimics a racing destroy: no values at all.
    e.num_values = e.status == Error::kNoEventSet
                       ? 0
                       : static_cast<std::uint32_t>(1 + rng.next() % 4);
    for (std::uint32_t v = 0; v < e.num_values; ++v) {
      // Mix tiny, huge, and negative magnitudes so both zigzag halves
      // and every varint length occur.
      const std::uint64_t raw = rng.next() >> (rng.next() % 64);
      snap.values.push_back(rng.next() % 2 == 0
                                ? static_cast<long long>(raw)
                                : -static_cast<long long>(raw));
    }
    snap.entries.push_back(e);
  }
  return snap;
}

TEST(AggregationWire, RandomizedRoundTripIsBitIdentical) {
  Xoshiro256 rng(0xC0FFEE);
  for (int round = 0; round < 50; ++round) {
    const std::uint32_t rank = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t cycles = rng.next();
    const RandomSnapshot snap =
        make_random_snapshot(rng, 1 + rng.next() % 8);

    std::vector<std::uint8_t> buf;
    ASSERT_TRUE(
        encode_frame(rank, cycles, snap.entries, snap.values, buf));

    WireReader reader(buf);
    FrameHeader fh;
    ASSERT_EQ(reader.begin_frame(fh), WireError::kOk) << "round " << round;
    EXPECT_EQ(fh.rank, rank);
    EXPECT_EQ(fh.frame_cycles, cycles);
    ASSERT_EQ(fh.entry_count, snap.entries.size());
    std::size_t value_cursor = 0;
    for (const papi::SnapshotEntry& want : snap.entries) {
      EntryHeader got;
      ASSERT_EQ(reader.read_entry(got), WireError::kOk);
      EXPECT_EQ(got.handle, want.handle);
      EXPECT_EQ(got.status, want.status);
      EXPECT_EQ(got.flags, static_cast<std::uint8_t>(want.flags));
      EXPECT_EQ(got.pub_cycles, want.pub_cycles);
      ASSERT_EQ(got.num_values, want.num_values);
      for (std::uint32_t v = 0; v < got.num_values; ++v) {
        long long value = 0;
        ASSERT_EQ(reader.read_value(value), WireError::kOk);
        EXPECT_EQ(value, snap.values[value_cursor++]);
      }
    }
    EXPECT_EQ(reader.end_frame(), WireError::kOk);
    EXPECT_TRUE(reader.done());
  }
}

TEST(AggregationWire, MultiFrameBufferDecodesInOrder) {
  Xoshiro256 rng(42);
  std::vector<std::uint8_t> buf;
  for (std::uint32_t rank = 0; rank < 5; ++rank) {
    const RandomSnapshot snap = make_random_snapshot(rng, 2);
    ASSERT_TRUE(
        encode_frame(rank, 100 + rank, snap.entries, snap.values, buf));
  }
  WireReader reader(buf);
  for (std::uint32_t rank = 0; rank < 5; ++rank) {
    FrameHeader fh;
    ASSERT_EQ(reader.begin_frame(fh), WireError::kOk);
    EXPECT_EQ(fh.rank, rank);
    EXPECT_EQ(fh.frame_cycles, 100 + rank);
    ASSERT_TRUE(reader.skip_frame());
  }
  FrameHeader fh;
  EXPECT_EQ(reader.begin_frame(fh), WireError::kNeedMore);
  EXPECT_TRUE(reader.done());
}

TEST(AggregationWire, ZigzagExtremesSurvive) {
  papi::SnapshotEntry e;
  e.handle = 1;
  e.first_value = 0;
  e.num_values = 4;
  const long long values[4] = {
      std::numeric_limits<long long>::min(),
      std::numeric_limits<long long>::max(), 0, -1};
  std::vector<std::uint8_t> buf;
  ASSERT_TRUE(encode_frame(0, 0, {&e, 1}, values, buf));
  WireReader reader(buf);
  FrameHeader fh;
  ASSERT_EQ(reader.begin_frame(fh), WireError::kOk);
  EntryHeader eh;
  ASSERT_EQ(reader.read_entry(eh), WireError::kOk);
  for (const long long want : values) {
    long long got = 0;
    ASSERT_EQ(reader.read_value(got), WireError::kOk);
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(reader.end_frame(), WireError::kOk);
}

/// Builds one small valid frame to mutate in the rejection tests.
std::vector<std::uint8_t> small_valid_frame() {
  papi::SnapshotEntry e;
  e.handle = 3;
  e.status = Error::kOk;
  e.flags = papi::read_flag::kPublished;
  e.pub_cycles = 999;
  e.first_value = 0;
  e.num_values = 2;
  const long long values[2] = {123456789, -42};
  std::vector<std::uint8_t> buf;
  EXPECT_TRUE(encode_frame(9, 777, {&e, 1}, values, buf));
  return buf;
}

TEST(AggregationWire, TruncationAtEveryByteFailsCleanly) {
  const std::vector<std::uint8_t> full = small_valid_frame();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> part(full.begin(),
                                         full.begin() + cut);
    WireReader reader(part);
    FrameHeader fh;
    WireError e = reader.begin_frame(fh);
    if (e == WireError::kOk) {
      // Header survived the cut; the interior must not.
      EntryHeader eh;
      e = reader.read_entry(eh);
      if (e == WireError::kOk) {
        long long v = 0;
        while ((e = reader.read_value(v)) == WireError::kOk) {
        }
      }
    }
    EXPECT_NE(e, WireError::kOk) << "cut at byte " << cut;
    // A truncated buffer must never be resyncable past its end.
    EXPECT_LE(reader.offset(), part.size());
  }
}

TEST(AggregationWire, BadMagicVersionReservedRejected) {
  {
    std::vector<std::uint8_t> buf = small_valid_frame();
    buf[4] ^= 0x01;  // magic
    WireReader reader(buf);
    FrameHeader fh;
    EXPECT_EQ(reader.begin_frame(fh), WireError::kBadMagic);
    // The declared length was valid, so the frame can be skipped and
    // the stream resynchronized.
    EXPECT_TRUE(reader.skip_frame());
    EXPECT_TRUE(reader.done());
  }
  {
    std::vector<std::uint8_t> buf = small_valid_frame();
    buf[8] = kWireVersion + 1;  // version byte
    WireReader reader(buf);
    FrameHeader fh;
    EXPECT_EQ(reader.begin_frame(fh), WireError::kBadVersion);
    EXPECT_TRUE(reader.skip_frame());
  }
  {
    std::vector<std::uint8_t> buf = small_valid_frame();
    buf[9] = 0xAA;  // unknown frame mode
    WireReader reader(buf);
    FrameHeader fh;
    EXPECT_EQ(reader.begin_frame(fh), WireError::kMalformed);
  }
}

TEST(AggregationWire, DeclaredLengthAbuseRejected) {
  {
    // Declared length beyond the format cap.
    std::vector<std::uint8_t> buf = small_valid_frame();
    const std::uint32_t huge = kMaxFrameBytes + 1;
    buf[0] = static_cast<std::uint8_t>(huge);
    buf[1] = static_cast<std::uint8_t>(huge >> 8);
    buf[2] = static_cast<std::uint8_t>(huge >> 16);
    buf[3] = static_cast<std::uint8_t>(huge >> 24);
    WireReader reader(buf);
    FrameHeader fh;
    EXPECT_EQ(reader.begin_frame(fh), WireError::kOversized);
    EXPECT_FALSE(reader.skip_frame());  // nothing trustworthy to skip to
  }
  {
    // Declared length larger than the buffer that arrived.
    std::vector<std::uint8_t> buf = small_valid_frame();
    buf[0] = static_cast<std::uint8_t>(buf.size() + 10);
    WireReader reader(buf);
    FrameHeader fh;
    EXPECT_EQ(reader.begin_frame(fh), WireError::kTruncated);
  }
  {
    // Declared length too small to hold even an empty frame.
    std::vector<std::uint8_t> buf = small_valid_frame();
    buf[0] = 5;
    buf[1] = buf[2] = buf[3] = 0;
    WireReader reader(buf);
    FrameHeader fh;
    EXPECT_EQ(reader.begin_frame(fh), WireError::kMalformed);
  }
  {
    // Entry count that cannot fit the declared payload.
    papi::SnapshotEntry e;
    e.handle = 1;
    e.num_values = 0;
    std::vector<std::uint8_t> buf;
    ASSERT_TRUE(encode_frame(0, 0, {&e, 1}, {}, buf));
    // Overwrite the entry-count varint (last header byte before the
    // entry) with a large one-byte value.
    // Header: 4 len + 4 magic + 1 ver + 1 res + rank(1) + cycles(1) +
    // count(1) -> count lives at offset 12 for these tiny values.
    buf[12] = 0x7F;  // 127 entries declared, ~5 bytes present
    WireReader reader(buf);
    FrameHeader fh;
    EXPECT_EQ(reader.begin_frame(fh), WireError::kMalformed);
  }
}

TEST(AggregationWire, OverlongVarintRejected) {
  // Hand-build a frame whose rank varint has continuation bits through
  // all ten bytes.
  std::vector<std::uint8_t> buf(4 + 4 + 2, 0);
  buf[4] = static_cast<std::uint8_t>(kWireMagic);
  buf[5] = static_cast<std::uint8_t>(kWireMagic >> 8);
  buf[6] = static_cast<std::uint8_t>(kWireMagic >> 16);
  buf[7] = static_cast<std::uint8_t>(kWireMagic >> 24);
  buf[8] = kWireVersion;
  buf[9] = 0;
  for (int i = 0; i < 10; ++i) buf.push_back(0xFF);  // overlong varint
  buf.push_back(0x00);
  buf.push_back(0x00);
  const std::uint32_t len = static_cast<std::uint32_t>(buf.size());
  buf[0] = static_cast<std::uint8_t>(len);
  buf[1] = static_cast<std::uint8_t>(len >> 8);
  buf[2] = static_cast<std::uint8_t>(len >> 16);
  buf[3] = static_cast<std::uint8_t>(len >> 24);
  WireReader reader(buf);
  FrameHeader fh;
  EXPECT_EQ(reader.begin_frame(fh), WireError::kMalformed);
}

TEST(AggregationWire, FrameModeRoundTripsAndUnknownModeRejected) {
  papi::SnapshotEntry e;
  e.handle = 1;
  e.first_value = 0;
  e.num_values = 1;
  const long long values[1] = {5};
  std::vector<std::uint8_t> buf;
  ASSERT_TRUE(encode_frame(4, 100, {&e, 1}, values, buf,
                           kFrameModeRankRun));
  WireReader reader(buf);
  FrameHeader fh;
  ASSERT_EQ(reader.begin_frame(fh), WireError::kOk);
  EXPECT_EQ(fh.mode, kFrameModeRankRun);
  EXPECT_EQ(fh.rank, 4u);
  // The encoder refuses modes the format does not define.
  std::vector<std::uint8_t> buf2;
  EXPECT_FALSE(encode_frame(4, 100, {&e, 1}, values, buf2,
                            kFrameModeRankRun + 1));
  EXPECT_TRUE(buf2.empty());
}

TEST(AggregationWire, TrailingEntryBytesAreSkippedForwardCompat) {
  // The per-entry length is authoritative: bytes past the fields this
  // decoder version consumes must be skipped, which is what lets a
  // newer encoder append entry fields without breaking old decoders.
  std::vector<std::uint8_t> buf = small_valid_frame();
  // Layout for small_valid_frame: 10-byte header, rank 9 (1 byte),
  // cycles 777 (2 bytes), count 1 (1 byte) -> entry_len at offset 14.
  ASSERT_EQ(buf[14], buf.size() - 15) << "frame layout drifted";
  buf.insert(buf.end(), {0xEE, 0xEE, 0xEE});  // "future fields"
  buf[14] += 3;
  const auto len = static_cast<std::uint32_t>(buf.size());
  buf[0] = static_cast<std::uint8_t>(len);
  buf[1] = static_cast<std::uint8_t>(len >> 8);
  buf[2] = static_cast<std::uint8_t>(len >> 16);
  buf[3] = static_cast<std::uint8_t>(len >> 24);

  WireReader reader(buf);
  FrameHeader fh;
  ASSERT_EQ(reader.begin_frame(fh), WireError::kOk);
  EntryHeader eh;
  ASSERT_EQ(reader.read_entry(eh), WireError::kOk);
  EXPECT_EQ(eh.handle, 3);
  EXPECT_EQ(eh.pub_cycles, 999u);
  ASSERT_EQ(eh.num_values, 2u);
  long long got[2] = {0, 0};
  ASSERT_EQ(reader.read_values(got, 2), WireError::kOk);
  EXPECT_EQ(got[0], 123456789);
  EXPECT_EQ(got[1], -42);
  // end_frame hops the unknown trailing bytes and still lands exactly
  // on the declared frame end.
  EXPECT_EQ(reader.end_frame(), WireError::kOk);
  EXPECT_TRUE(reader.done());
}

TEST(AggregationWire, LyingEntryLengthRejected) {
  {
    // Entry length reaching past the frame end.
    std::vector<std::uint8_t> buf = small_valid_frame();
    buf[14] = 0x60;
    WireReader reader(buf);
    FrameHeader fh;
    ASSERT_EQ(reader.begin_frame(fh), WireError::kOk);
    EntryHeader eh;
    EXPECT_EQ(reader.read_entry(eh), WireError::kMalformed);
  }
  {
    // Entry length too small for its own fields: every field read is
    // bounded by the declared entry end, never the frame end.
    std::vector<std::uint8_t> buf = small_valid_frame();
    buf[14] = 2;
    WireReader reader(buf);
    FrameHeader fh;
    ASSERT_EQ(reader.begin_frame(fh), WireError::kOk);
    EntryHeader eh;
    EXPECT_NE(reader.read_entry(eh), WireError::kOk);
  }
}

TEST(AggregationWire, DeltaStampsSurviveExtremeDistance) {
  // Publication stamps ride as wrapping zigzag deltas from the frame
  // stamp; the mapping must be exact even when the two are at opposite
  // ends of the 64-bit range.
  const std::uint64_t kPairs[][2] = {
      {0, std::numeric_limits<std::uint64_t>::max()},
      {std::numeric_limits<std::uint64_t>::max(), 0},
      {1ull << 63, (1ull << 63) - 1},
  };
  for (const auto& pair : kPairs) {
    papi::SnapshotEntry e;
    e.handle = 1;
    e.pub_cycles = pair[1];
    e.first_value = 0;
    e.num_values = 0;
    std::vector<std::uint8_t> buf;
    ASSERT_TRUE(encode_frame(0, pair[0], {&e, 1}, {}, buf));
    WireReader reader(buf);
    FrameHeader fh;
    ASSERT_EQ(reader.begin_frame(fh), WireError::kOk);
    EXPECT_EQ(fh.frame_cycles, pair[0]);
    EntryHeader eh;
    ASSERT_EQ(reader.read_entry(eh), WireError::kOk);
    EXPECT_EQ(eh.pub_cycles, pair[1]);
    EXPECT_EQ(reader.end_frame(), WireError::kOk);
  }
}

TEST(AggregationWire, EncoderEnforcesCaps) {
  // Entry pointing past the value buffer is refused and rolls back.
  papi::SnapshotEntry e;
  e.handle = 1;
  e.first_value = 4;
  e.num_values = 4;
  const long long values[2] = {1, 2};
  std::vector<std::uint8_t> buf{0xAB};  // pre-existing bytes survive
  EXPECT_FALSE(encode_frame(0, 0, {&e, 1}, values, buf));
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0xAB);
  // Declared per-entry value count beyond the cap is refused.
  e.first_value = 0;
  e.num_values = kMaxValuesPerEntry + 1;
  EXPECT_FALSE(encode_frame(0, 0, {&e, 1}, values, buf));
  EXPECT_EQ(buf.size(), 1u);
}

}  // namespace
