// End-to-end tests of the Cray T3E substrate: register-level read costs,
// 3-counter allocation pressure, precise in-order attribution.
#include <gtest/gtest.h>

#include "core/eventset.h"
#include "core/profile.h"
#include "test_util.h"
#include "tools/vprof.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

TEST(T3e, CountsExactly) {
  SimFixture f(sim::make_saxpy(5'000), pmu::sim_t3e(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kLdIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kL1Dcm).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(3);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_EQ(v[0], static_cast<long long>(f.machine->retired()));
  EXPECT_EQ(v[1], 10'000);
  EXPECT_GT(v[2], 0);
}

TEST(T3e, ReadsAreNearlyFree) {
  SimFixture f(sim::make_saxpy(50'000), pmu::sim_t3e());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok());
  // Read aggressively: every 1000 cycles.
  long long scratch = 0;
  auto timer = f.substrate->add_timer(1'000, [&] {
    (void)f.library->event_set(set.handle()).value()->read({&scratch, 1});
  });
  ASSERT_TRUE(timer.ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  // Register-level access: even 1kHz-per-kcycle reading stays ~1%.
  EXPECT_LT(static_cast<double>(f.machine->overhead_cycles()) /
                static_cast<double>(f.machine->cycles()),
            0.02);
}

TEST(T3e, ThreeCounterAllocationPressure) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_t3e());
  EventSet& set = f.new_set();
  // EV5_CYCLES only on counter 0; two more events fill the machine.
  ASSERT_TRUE(set.add_preset(Preset::kTotCyc).ok());
  ASSERT_TRUE(set.add_preset(Preset::kLdIns).ok());
  ASSERT_TRUE(set.add_preset(Preset::kSrIns).ok());
  // A fourth event cannot fit without multiplexing.
  EXPECT_EQ(set.add_preset(Preset::kBrIns).error(), Error::kConflict);
  ASSERT_TRUE(set.enable_multiplex().ok());
  EXPECT_TRUE(set.add_preset(Preset::kBrIns).ok());
}

TEST(T3e, ScacheMissOnlyOnCounter2) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_t3e());
  auto code = f.substrate->native_by_name("EV5_SCACHE_MISS");
  ASSERT_TRUE(code.ok());
  const pmu::NativeEventCode events[] = {code.value()};
  auto assignment = f.substrate->allocate(events, {});
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment.value()[0], 2u);
}

TEST(T3e, InOrderAttributionIsExact) {
  SimFixture f(sim::make_pointer_chase(512, 50'000, 7), pmu::sim_t3e(),
               {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(Preset::kL1Dcm).ok());
  ProfileBuffer buf(sim::kTextBase,
                    f.workload.program.size() * sim::kInstrBytes);
  ASSERT_TRUE(
      set.profil(buf, EventId::preset(Preset::kL1Dcm), 300).ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  const auto acc =
      tools::attribution_accuracy(buf, f.workload.program, 3);
  ASSERT_GT(acc.total_samples, 20u);
  EXPECT_GT(acc.exact, 0.99);  // precise skid model: no smear
}

TEST(T3e, NoNormalizedFpOps) {
  // EV5 has no FMA event, so the platform genuinely cannot express the
  // normalized PAPI_FP_OPS — only the raw instruction count maps.
  SimFixture f(sim::make_saxpy(100), pmu::sim_t3e());
  EXPECT_FALSE(
      f.library->query_event(EventId::preset(Preset::kFpOps)));
  EXPECT_TRUE(f.library->query_event(EventId::preset(Preset::kFpIns)));
}

}  // namespace
}  // namespace papirepro::papi
