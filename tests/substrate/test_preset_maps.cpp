#include "substrate/preset_maps.h"

#include <gtest/gtest.h>

namespace papirepro::papi {
namespace {

TEST(PresetMaps, EveryPlatformMapsTheBasics) {
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    EXPECT_TRUE(map_preset(*p, Preset::kTotCyc).ok()) << p->name;
    EXPECT_TRUE(map_preset(*p, Preset::kTotIns).ok()) << p->name;
  }
}

TEST(PresetMaps, AvailabilityDiffersAcrossPlatforms) {
  // The availability matrix is platform-specific, as in real PAPI.
  const auto x86 = available_presets(pmu::sim_x86());
  const auto power3 = available_presets(pmu::sim_power3());
  const auto ia64 = available_presets(pmu::sim_ia64());
  const auto alpha = available_presets(pmu::sim_alpha());

  EXPECT_GT(x86.size(), 15u);
  EXPECT_GT(power3.size(), 15u);
  EXPECT_GT(ia64.size(), 15u);
  // Alpha's aggregate interface is deliberately thin.
  EXPECT_LT(alpha.size(), x86.size());

  // PAPI_FDV_INS exists on power3 but not on x86.
  EXPECT_FALSE(map_preset(pmu::sim_x86(), Preset::kFdvIns).ok());
  EXPECT_TRUE(map_preset(pmu::sim_power3(), Preset::kFdvIns).ok());
  // PAPI_FP_INS exists on x86/power3 but not on ia64.
  EXPECT_FALSE(map_preset(pmu::sim_ia64(), Preset::kFpIns).ok());
}

TEST(PresetMaps, AllMappedTermsResolveToRealNatives) {
  for (const pmu::PlatformDescription* p : pmu::all_platforms()) {
    for (Preset preset : available_presets(*p)) {
      const auto mapping = map_preset(*p, preset);
      ASSERT_TRUE(mapping.ok());
      EXPECT_FALSE(mapping.value().terms.empty());
      for (const MappingTerm& t : mapping.value().terms) {
        EXPECT_NE(p->find_event(t.native), nullptr)
            << p->name << " " << preset_name(preset);
        EXPECT_TRUE(t.coefficient == 1 || t.coefficient == -1);
      }
    }
  }
}

TEST(PresetMaps, FpOpsIsDerivedOnPower3) {
  // PM_FPU_INS - PM_FPU_CVT + PM_EXEC_FMA: the normalization recipe.
  const auto mapping = map_preset(pmu::sim_power3(), Preset::kFpOps);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping.value().terms.size(), 3u);
  EXPECT_TRUE(mapping.value().derived());
  int negative_terms = 0;
  for (const MappingTerm& t : mapping.value().terms) {
    if (t.coefficient < 0) ++negative_terms;
  }
  EXPECT_EQ(negative_terms, 1);
}

TEST(PresetMaps, FpOpsAddsFmaTwiceOnX86) {
  const auto mapping = map_preset(pmu::sim_x86(), Preset::kFpOps);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping.value().terms.size(), 2u);
  for (const MappingTerm& t : mapping.value().terms) {
    EXPECT_EQ(t.coefficient, 1);
  }
}

TEST(PresetMaps, UnknownPlatformRejected) {
  pmu::PlatformDescription fake;
  fake.name = "sim-vax";
  EXPECT_EQ(map_preset(fake, Preset::kTotCyc).error(), Error::kSubstrate);
}

}  // namespace
}  // namespace papirepro::papi
