// Tests of the real-kernel perf_event substrate.  Software events
// (task-clock, page faults) are permitted under the default
// perf_event_paranoid; hardware-event tests skip gracefully where the
// environment forbids them — the same graceful degradation PAPI had on
// unpatched kernels.
#include "substrate/perf_event_substrate.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/library.h"

namespace papirepro::papi {
namespace {

pmu::NativeEventCode code_of(const PerfEventSubstrate& sub,
                             std::string_view name) {
  auto code = sub.native_by_name(name);
  EXPECT_TRUE(code.ok()) << name;
  return code.value();
}

TEST(PerfEvent, NativeNameRoundTrip) {
  PerfEventSubstrate sub;
  for (const char* name :
       {"PERF_COUNT_HW_CPU_CYCLES", "PERF_COUNT_SW_TASK_CLOCK",
        "PERF_COUNT_SW_PAGE_FAULTS"}) {
    auto code = sub.native_by_name(name);
    ASSERT_TRUE(code.ok()) << name;
    EXPECT_EQ(sub.native_name(code.value()).value(), name);
  }
  EXPECT_EQ(sub.native_by_name("PERF_COUNT_HW_FOO").error(),
            Error::kNoEvent);
}

TEST(PerfEvent, PresetMappings) {
  PerfEventSubstrate sub;
  EXPECT_TRUE(sub.preset_mapping(Preset::kTotCyc).ok());
  EXPECT_TRUE(sub.preset_mapping(Preset::kTotIns).ok());
  EXPECT_TRUE(sub.preset_mapping(Preset::kBrMsp).ok());
  // Derived: correctly-predicted branches.
  auto prc = sub.preset_mapping(Preset::kBrPrc);
  ASSERT_TRUE(prc.ok());
  EXPECT_EQ(prc.value().terms.size(), 2u);
  // L1-specific events have no portable perf mapping here.
  EXPECT_EQ(sub.preset_mapping(Preset::kL1Dcm).error(), Error::kNoEvent);
}

TEST(PerfEvent, SoftwareCountingEndToEnd) {
  PerfEventSubstrate sub;
  if (!sub.available()) GTEST_SKIP() << "perf_event unavailable";

  const pmu::NativeEventCode events[] = {
      code_of(sub, "PERF_COUNT_SW_TASK_CLOCK"),
      code_of(sub, "PERF_COUNT_SW_PAGE_FAULTS")};
  auto assignment = sub.allocate(events, {});
  ASSERT_TRUE(assignment.ok());
  auto ctx = sub.create_context().value();
  ASSERT_TRUE(ctx->program(events, assignment.value()).ok());
  ASSERT_TRUE(ctx->start().ok());

  // Burn CPU and fault some pages.
  volatile double x = 1.0;
  for (int i = 0; i < 3'000'000; ++i) x = x * 1.0000001 + 0.25;
  std::vector<char> pages(8 * 1024 * 1024);
  for (std::size_t i = 0; i < pages.size(); i += 4096) pages[i] = 1;

  ASSERT_TRUE(ctx->stop().ok());
  std::uint64_t out[2] = {};
  ASSERT_TRUE(ctx->read(out).ok());
  EXPECT_GT(out[0], 1'000'000u);  // >1ms of task clock (ns units)
  EXPECT_GT(out[1], 500u);        // touched ~2000 pages
}

TEST(PerfEvent, ResetZeroesAndRecounts) {
  PerfEventSubstrate sub;
  if (!sub.available()) GTEST_SKIP() << "perf_event unavailable";
  const pmu::NativeEventCode events[] = {
      code_of(sub, "PERF_COUNT_SW_TASK_CLOCK")};
  std::uint32_t counters[] = {0};
  auto ctx = sub.create_context().value();
  ASSERT_TRUE(ctx->program(events, counters).ok());
  ASSERT_TRUE(ctx->start().ok());
  volatile double x = 1.0;
  for (int i = 0; i < 1'000'000; ++i) x = x * 1.0000001 + 0.25;
  std::uint64_t v1 = 0;
  ASSERT_TRUE(ctx->read({&v1, 1}).ok());
  EXPECT_GT(v1, 0u);
  ASSERT_TRUE(ctx->reset_counts().ok());
  std::uint64_t v2 = 0;
  ASSERT_TRUE(ctx->read({&v2, 1}).ok());
  EXPECT_LT(v2, v1);
  ASSERT_TRUE(ctx->stop().ok());
}

TEST(PerfEvent, HardwareCountingOrGracefulDenial) {
  PerfEventSubstrate sub;
  if (!sub.available()) GTEST_SKIP() << "perf_event unavailable";
  const pmu::NativeEventCode events[] = {
      code_of(sub, "PERF_COUNT_HW_INSTRUCTIONS")};
  std::uint32_t counters[] = {0};
  auto ctx = sub.create_context().value();
  const Status programmed = ctx->program(events, counters);
  if (!sub.hardware_available()) {
    // Containers/paranoid kernels: a *typed* denial, not a crash.
    EXPECT_TRUE(programmed.error() == Error::kPermission ||
                programmed.error() == Error::kNoCounters)
        << programmed.message();
    return;
  }
  ASSERT_TRUE(programmed.ok());
  ASSERT_TRUE(ctx->start().ok());
  volatile double x = 1.0;
  for (int i = 0; i < 1'000'000; ++i) x = x * 1.0000001 + 0.25;
  ASSERT_TRUE(ctx->stop().ok());
  std::uint64_t v = 0;
  ASSERT_TRUE(ctx->read({&v, 1}).ok());
  EXPECT_GT(v, 1'000'000u);
}

TEST(PerfEvent, WorksThroughTheLibraryLayer) {
  auto sub_ptr = std::make_unique<PerfEventSubstrate>();
  if (!sub_ptr->available()) GTEST_SKIP() << "perf_event unavailable";
  PerfEventSubstrate* sub = sub_ptr.get();
  Library library(std::move(sub_ptr));

  auto handle = library.create_event_set();
  EventSet* set = library.event_set(handle.value()).value();
  ASSERT_TRUE(set->add_named("PERF_COUNT_SW_TASK_CLOCK").ok());
  ASSERT_TRUE(set->add_named("PERF_COUNT_SW_CONTEXT_SWITCHES").ok());
  ASSERT_TRUE(set->start().ok());
  volatile double x = 1.0;
  for (int i = 0; i < 2'000'000; ++i) x = x * 1.0000001 + 0.25;
  std::vector<long long> values(2);
  ASSERT_TRUE(set->stop(values).ok());
  EXPECT_GT(values[0], 0);
  EXPECT_GE(values[1], 0);
  (void)sub;
}

TEST(PerfEvent, TimersAndMemoryInfo) {
  PerfEventSubstrate sub;
  const auto t0 = sub.real_usec();
  volatile double x = 1.0;
  for (int i = 0; i < 500'000; ++i) x = x * 1.0000001 + 0.25;
  EXPECT_GE(sub.real_usec(), t0);
  EXPECT_GT(sub.virt_usec(), 0u);
  auto info = sub.memory_info();
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info.value().process_peak_bytes, 0u);
}

}  // namespace
}  // namespace papirepro::papi
