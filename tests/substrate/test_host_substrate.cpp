#include "substrate/host_substrate.h"

#include <gtest/gtest.h>

#include <thread>

namespace papirepro::papi {
namespace {

TEST(HostSubstrate, CountersUnavailable) {
  HostSubstrate sub;
  EXPECT_EQ(sub.num_counters(), 0u);
  auto ctx = sub.create_context().value();
  EXPECT_EQ(ctx->start().error(), Error::kNoCounters);
  EXPECT_EQ(ctx->program({}, {}).error(), Error::kNoCounters);
  EXPECT_FALSE(ctx->running());
  EXPECT_EQ(sub.preset_mapping(Preset::kTotCyc).error(), Error::kNoEvent);
  EXPECT_FALSE(sub.supports_multiplex());
  EXPECT_FALSE(sub.supports_estimation());
}

TEST(HostSubstrate, RealTimersAdvanceMonotonically) {
  HostSubstrate sub;
  const auto t0 = sub.real_usec();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const auto t1 = sub.real_usec();
  EXPECT_GT(t1, t0);
  EXPECT_GE(t1 - t0, 1500u);  // at least ~1.5ms elapsed
}

TEST(HostSubstrate, CycleTimerAdvances) {
  HostSubstrate sub;
  const auto c0 = sub.real_cycles();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(sub.real_cycles(), c0);
}

TEST(HostSubstrate, VirtualTimeAdvancesUnderCpuWork) {
  HostSubstrate sub;
  const auto v0 = sub.virt_usec();
  volatile double x = 1.0;
  for (int i = 0; i < 2'000'000; ++i) x = x * 1.0000001 + 0.5;
  EXPECT_GT(sub.virt_usec(), v0);
}

TEST(HostSubstrate, MemoryInfoPopulated) {
  HostSubstrate sub;
  auto info = sub.memory_info();
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info.value().total_bytes, 0u);
  EXPECT_GT(info.value().process_resident_bytes, 0u);
  EXPECT_GE(info.value().process_peak_bytes,
            info.value().process_resident_bytes / 2);
  EXPECT_GT(info.value().page_size_bytes, 0u);
}

TEST(HostSubstrate, PeakGrowsWithAllocation) {
  HostSubstrate sub;
  const auto before = sub.memory_info().value().process_peak_bytes;
  std::vector<char> hog(32 * 1024 * 1024, 1);
  // Touch to force residency.
  for (std::size_t i = 0; i < hog.size(); i += 4096) hog[i] = 2;
  const auto after = sub.memory_info().value().process_peak_bytes;
  EXPECT_GE(after, before + 16 * 1024 * 1024);
}

}  // namespace
}  // namespace papirepro::papi
