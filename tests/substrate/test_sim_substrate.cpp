#include "substrate/sim_substrate.h"

#include <gtest/gtest.h>

#include "core/library.h"
#include "sim/kernels.h"

namespace papirepro::papi {
namespace {

pmu::NativeEventCode code_of(const pmu::PlatformDescription& p,
                             std::string_view n) {
  const pmu::NativeEvent* e = p.find_event(n);
  EXPECT_NE(e, nullptr) << n;
  return e->code;
}

TEST(SimSubstrate, EndToEndCounting) {
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_saxpy(1000);
  sim::Machine m(w.program, p.machine);
  w.setup(m);
  SimSubstrate sub(m, p, {.charge_costs = false});

  const pmu::NativeEventCode events[] = {code_of(p, "FP_FMA_RETIRED"),
                                         code_of(p, "LD_RETIRED")};
  auto assignment = sub.allocate(events, {});
  ASSERT_TRUE(assignment.ok());
  auto ctx = sub.create_context().value();
  ASSERT_TRUE(ctx->program(events, assignment.value()).ok());
  ASSERT_TRUE(ctx->start().ok());
  m.run();
  ASSERT_TRUE(ctx->stop().ok());
  std::uint64_t out[2];
  ASSERT_TRUE(ctx->read(out).ok());
  EXPECT_EQ(out[0], 1000u);
  EXPECT_EQ(out[1], 2000u);
}

TEST(SimSubstrate, ReadChargesSystemCallCost) {
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_empty_loop(100);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p);

  const pmu::NativeEventCode events[] = {code_of(p, "INST_RETIRED")};
  std::uint32_t counters[] = {0};
  auto ctx = sub.create_context().value();
  ASSERT_TRUE(ctx->program(events, counters).ok());
  ASSERT_TRUE(ctx->start().ok());
  const std::uint64_t before = m.overhead_cycles();
  std::uint64_t out[1];
  ASSERT_TRUE(ctx->read(out).ok());
  EXPECT_EQ(m.overhead_cycles() - before, p.costs.read_cost_cycles);
}

TEST(SimSubstrate, CostChargingCanBeDisabled) {
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_empty_loop(100);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p, {.charge_costs = false});
  const pmu::NativeEventCode events[] = {code_of(p, "INST_RETIRED")};
  std::uint32_t counters[] = {0};
  auto ctx = sub.create_context().value();
  ASSERT_TRUE(ctx->program(events, counters).ok());
  ASSERT_TRUE(ctx->start().ok());
  std::uint64_t out[1];
  ASSERT_TRUE(ctx->read(out).ok());
  ASSERT_TRUE(ctx->stop().ok());
  EXPECT_EQ(m.overhead_cycles(), 0u);
}

TEST(SimSubstrate, AllocateSolvesConstrainedInstance) {
  // L1D_MISS {0,1}, L2_MISS {0}, DTLB_MISS {1,2}: greedy-hostile order.
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p);
  const pmu::NativeEventCode events[] = {code_of(p, "L1D_MISS"),
                                         code_of(p, "L2_MISS"),
                                         code_of(p, "DTLB_MISS")};
  auto assignment = sub.allocate(events, {});
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment.value()[1], 0u);  // L2 has no choice
  EXPECT_EQ(assignment.value()[0], 1u);
  EXPECT_EQ(assignment.value()[2], 2u);
}

TEST(SimSubstrate, AllocateConflictWhenOvercommitted) {
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p);
  // Three events restricted to counters {0,1}.
  const pmu::NativeEventCode events[] = {code_of(p, "L1D_MISS"),
                                         code_of(p, "L1D_ACCESS"),
                                         code_of(p, "LD_RETIRED")};
  EXPECT_EQ(sub.allocate(events, {}).error(), Error::kConflict);
}

TEST(SimSubstrate, GroupAllocationOnPower3) {
  const auto& p = pmu::sim_power3();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p);

  // Compatible within group 1 "cache".
  const pmu::NativeEventCode ok_events[] = {code_of(p, "PM_DC_MISS"),
                                            code_of(p, "PM_L2_MISS")};
  auto ok = sub.allocate(ok_events, {});
  ASSERT_TRUE(ok.ok());
  auto ctx = sub.create_context().value();
  ASSERT_TRUE(ctx->program(ok_events, ok.value()).ok());

  // PM_FPU_INS and PM_DC_MISS never share a group: conflict.
  const pmu::NativeEventCode bad_events[] = {code_of(p, "PM_FPU_INS"),
                                             code_of(p, "PM_DC_MISS")};
  EXPECT_EQ(sub.allocate(bad_events, {}).error(), Error::kConflict);
}

TEST(SimSubstrate, EstimationServicesSampledEvents) {
  const auto& p = pmu::sim_alpha();
  sim::Workload w = sim::make_saxpy(100'000);
  sim::Machine m(w.program, p.machine);
  w.setup(m);
  SimSubstrate sub(m, p);

  const pmu::NativeEventCode events[] = {
      code_of(p, "RETIRED_INSTRUCTIONS"), code_of(p, "PME_FMA")};
  // Without estimation mode: conflict (PME events are sampled-only).
  EXPECT_EQ(sub.allocate(events, {}).error(), Error::kConflict);

  ASSERT_TRUE(sub.set_estimation(true).ok());
  auto assignment = sub.allocate(events, {});
  ASSERT_TRUE(assignment.ok());
  EXPECT_GE(assignment.value()[1], SimSubstrate::kSampledBase);
  auto ctx = sub.create_context().value();
  ASSERT_TRUE(ctx->program(events, assignment.value()).ok());
  ASSERT_TRUE(ctx->start().ok());
  m.run();
  ASSERT_TRUE(ctx->stop().ok());
  std::uint64_t out[2];
  ASSERT_TRUE(ctx->read(out).ok());
  EXPECT_EQ(out[0], m.retired());
  // Estimated FMA count within 10% of truth on a long run.
  EXPECT_NEAR(static_cast<double>(out[1]), 100'000.0, 10'000.0);
  EXPECT_NE(sub.sampling_engine(), nullptr);
}

TEST(SimSubstrate, OverflowRoutesThroughEventIndex) {
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_empty_loop(2000);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p);
  const pmu::NativeEventCode events[] = {code_of(p, "CPU_CLK_UNHALTED"),
                                         code_of(p, "INST_RETIRED")};
  auto assignment = sub.allocate(events, {});
  ASSERT_TRUE(assignment.ok());
  auto ctx = sub.create_context().value();
  ASSERT_TRUE(ctx->program(events, assignment.value()).ok());
  int fires = 0;
  ASSERT_TRUE(ctx->set_overflow(1, 1000,
                                [&](const SubstrateOverflow& o) {
                                  EXPECT_EQ(o.event_index, 1u);
                                  ++fires;
                                })
                  .ok());
  ASSERT_TRUE(ctx->start().ok());
  m.run();
  EXPECT_GT(fires, 0);
  // Each overflow charged handler cycles.
  EXPECT_GE(m.overhead_cycles(),
            static_cast<std::uint64_t>(fires) *
                p.costs.overflow_handler_cost_cycles);
}

TEST(SimSubstrate, TimersTrackMachineClock) {
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_empty_loop(50'000);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p);
  EXPECT_EQ(sub.real_cycles(), 0u);
  m.run();
  EXPECT_EQ(sub.real_cycles(), m.cycles());
  EXPECT_EQ(sub.real_usec(), m.microseconds());
  EXPECT_EQ(sub.virt_usec(), sub.real_usec());
}

TEST(SimSubstrate, MemoryInfoReflectsTouchedPages) {
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_saxpy(4096);  // 2 arrays x 32 KiB
  sim::Machine m(w.program, p.machine);
  w.setup(m);
  SimSubstrate sub(m, p);
  auto info = sub.memory_info();
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info.value().process_resident_bytes, 2 * 4096 * 8u);
  EXPECT_EQ(info.value().page_size_bytes, sim::kPageSize);
  EXPECT_GT(info.value().total_bytes, info.value().process_resident_bytes);
}

TEST(SimSubstrate, PriorityAllocationDropsLowWeightEvent) {
  // Three events competing for the two "low" counters {0,1}: with
  // priorities, the max-weight matcher keeps the two heaviest — the
  // paper's "maximum weight matching if some events have higher
  // priority than others."
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p);
  const pmu::NativeEventCode events[] = {code_of(p, "L1D_MISS"),
                                         code_of(p, "L1D_ACCESS"),
                                         code_of(p, "LD_RETIRED")};
  const int priorities[] = {5, 1, 9};
  auto instance = sub.translate_allocation(events, priorities);
  ASSERT_TRUE(instance.ok());
  const AllocationResult r = solve_max_weight(instance.value());
  EXPECT_EQ(r.mapped_count, 2u);
  EXPECT_NE(r.assignment[0], AllocationResult::kUnassigned);  // weight 5
  EXPECT_EQ(r.assignment[1], AllocationResult::kUnassigned);  // weight 1
  EXPECT_NE(r.assignment[2], AllocationResult::kUnassigned);  // weight 9
}

TEST(SimSubstrate, DerivedPresetOnGroupPlatformEndToEnd) {
  // PAPI_FP_OPS on sim-power3 needs three natives that only co-exist in
  // the "fp" group: the whole path (mapping -> group allocation ->
  // signed combination) in one shot.
  const auto& p = pmu::sim_power3();
  sim::Workload w = sim::make_fcvt_mixed(5'000);
  sim::Machine m(w.program, p.machine);
  w.setup(m);
  auto subp = std::make_unique<SimSubstrate>(
      m, p, SimSubstrateOptions{.charge_costs = false});
  Library library(std::move(subp));
  auto handle = library.create_event_set();
  EventSet* set = library.event_set(handle.value()).value();
  ASSERT_TRUE(set->add_preset(Preset::kFpOps).ok());
  ASSERT_TRUE(set->start().ok());
  m.run();
  long long v = 0;
  ASSERT_TRUE(set->stop({&v, 1}).ok());
  EXPECT_EQ(v, 5'000);  // converts excluded by the derived mapping
}

TEST(SimSubstrate, NativeNameLookups) {
  const auto& p = pmu::sim_x86();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  SimSubstrate sub(m, p);
  auto code = sub.native_by_name("INST_RETIRED");
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(sub.native_name(code.value()).value(), "INST_RETIRED");
  EXPECT_EQ(sub.native_by_name("NOPE").error(), Error::kNoEvent);
}

}  // namespace
}  // namespace papirepro::papi
