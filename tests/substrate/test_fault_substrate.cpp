// FaultInjectingSubstrate decorator semantics: deterministic scripts and
// probability streams, runtime enable/disable transparency, narrow-width
// read masking, and fault observability counters.  The *hardening* of the
// portable layers against these faults is covered by
// tests/core/test_fault_hardening.cpp; this file pins down the decorator
// itself, since every hardening result is only as trustworthy as the
// injector is reproducible.
#include "substrate/fault_substrate.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/eventset.h"
#include "pmu/platform.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::FaultFixture;
using papirepro::test::SimFixture;

FaultPlan no_fault_plan() { return FaultPlan{}; }

TEST(FaultSubstrate, DecoratedNameAndForwardedServices) {
  FaultFixture f(sim::make_saxpy(1000), pmu::sim_x86(), no_fault_plan());
  EXPECT_EQ(f.fault->name(), "fault+sim-x86");
  EXPECT_EQ(f.fault->num_counters(), f.substrate->num_counters());
  EXPECT_EQ(f.fault->platform(), f.substrate->platform());
  EXPECT_EQ(f.fault->counter_width_bits(), 64u);
  // The stateless event namespace is pure forwarding.
  ASSERT_TRUE(f.fault->native_by_name("L1D_MISS").ok());
  EXPECT_EQ(f.fault->native_by_name("L1D_MISS").value(),
            f.substrate->native_by_name("L1D_MISS").value());
}

TEST(FaultSubstrate, NoFaultPlanIsTransparent) {
  // An armed decorator with an all-zero plan must not change results.
  FaultFixture f(sim::make_saxpy(2000), pmu::sim_x86(), no_fault_plan());
  ASSERT_TRUE(f.fault->enabled());
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_EQ(static_cast<std::uint64_t>(v[0]), f.machine->retired());
  EXPECT_EQ(f.fault->injected_count(FaultSite::kProgram), 0u);
  EXPECT_EQ(f.fault->injected_count(FaultSite::kRead), 0u);
  // The call sites were exercised, just never faulted.
  EXPECT_GE(f.fault->call_count(FaultSite::kProgram), 1u);
  EXPECT_GE(f.fault->call_count(FaultSite::kCreateContext), 1u);
}

TEST(FaultSubstrate, DisabledDecoratorForwardsAndScriptsDoNotAdvance) {
  FaultPlan plan;
  plan.at(FaultSite::kProgram) = {/*fail_times=*/100, /*probability=*/1.0,
                                  Error::kConflict};
  plan.at(FaultSite::kRead) = {100, 1.0, Error::kNoCounters};
  plan.counter_width_bits = 24;
  FaultFixture f(sim::make_saxpy(2000), pmu::sim_x86(), plan);
  f.fault->set_enabled(false);
  EXPECT_EQ(f.fault->counter_width_bits(), 64u);  // width fault off too
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(1);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_EQ(static_cast<std::uint64_t>(v[0]), f.machine->retired());
  EXPECT_EQ(f.fault->injected_count(FaultSite::kProgram), 0u);
  EXPECT_EQ(f.fault->injected_count(FaultSite::kRead), 0u);
}

TEST(FaultSubstrate, ScriptFailsExactlyNTimesThenSucceeds) {
  FaultPlan plan;
  plan.at(FaultSite::kCreateContext) = {/*fail_times=*/3,
                                        /*probability=*/0.0,
                                        Error::kNoCounters};
  FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), plan);
  // Drive the site directly: the first three creates fail with exactly
  // the scripted code, the fourth forwards.
  for (int i = 0; i < 3; ++i) {
    auto attempt = f.fault->create_context();
    ASSERT_FALSE(attempt.ok()) << "attempt " << i;
    EXPECT_EQ(attempt.error(), Error::kNoCounters);
  }
  auto attempt = f.fault->create_context();
  ASSERT_TRUE(attempt.ok());
  EXPECT_NE(attempt.value(), nullptr);
  EXPECT_EQ(f.fault->injected_count(FaultSite::kCreateContext), 3u);
  EXPECT_EQ(f.fault->call_count(FaultSite::kCreateContext), 4u);
}

TEST(FaultSubstrate, SetPlanRewindsScriptsAndStreams) {
  FaultPlan plan;
  plan.at(FaultSite::kCreateContext) = {1, 0.0, Error::kConflict};
  FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), plan);
  EXPECT_FALSE(f.fault->create_context().ok());
  EXPECT_TRUE(f.fault->create_context().ok());
  // Rewinding the same plan re-arms the scripted failure.
  f.fault->set_plan(plan);
  EXPECT_EQ(f.fault->injected_count(FaultSite::kCreateContext), 0u);
  EXPECT_FALSE(f.fault->create_context().ok());
  EXPECT_TRUE(f.fault->create_context().ok());
}

TEST(FaultSubstrate, ProbabilityStreamIsDeterministicPerSeed) {
  // Same plan => bit-identical failure sequence; different seed =>
  // (almost surely) a different one.  Observed through raw read() calls
  // on a context so no retry layer interferes.
  auto sequence = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.at(FaultSite::kRead) = {0, /*probability=*/0.5, Error::kSystem};
    FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), plan);
    auto context = f.fault->create_context();
    EXPECT_TRUE(context.ok());
    std::vector<bool> failed;
    std::uint64_t out[1] = {0};
    for (int i = 0; i < 64; ++i) {
      failed.push_back(!context.value()->read({out, 1}).ok());
    }
    return failed;
  };
  const auto a = sequence(42);
  const auto b = sequence(42);
  const auto c = sequence(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // The stream is a real coin, not all-heads or all-tails.
  int fails = 0;
  for (bool x : a) fails += x ? 1 : 0;
  EXPECT_GT(fails, 8);
  EXPECT_LT(fails, 56);
}

TEST(FaultSubstrate, NarrowWidthMasksRawReads) {
  FaultPlan plan;
  plan.counter_width_bits = 16;
  FaultFixture f(sim::make_saxpy(50'000), pmu::sim_x86(), plan,
                 {.charge_costs = false});
  EXPECT_EQ(f.fault->counter_width_bits(), 16u);
  auto context = f.fault->create_context();
  ASSERT_TRUE(context.ok());
  const pmu::NativeEventCode code =
      f.fault->native_by_name("INST_RETIRED").value();
  const std::uint32_t slot = 0;
  ASSERT_TRUE(context.value()->program({&code, 1}, {&slot, 1}).ok());
  ASSERT_TRUE(context.value()->start().ok());
  f.machine->run();  // retires far more than 2^16 instructions
  std::uint64_t out[1] = {0};
  ASSERT_TRUE(context.value()->read({out, 1}).ok());
  EXPECT_LT(out[0], 1ULL << 16);  // wrapped, as narrow hardware would
  EXPECT_GT(f.machine->retired(), 1ULL << 16);
}

TEST(FaultSubstrate, InjectedErrorCodeIsConfigurable) {
  FaultPlan plan;
  plan.at(FaultSite::kStart) = {2, 0.0, Error::kSystem};
  FaultFixture f(sim::make_saxpy(100), pmu::sim_x86(), plan);
  auto context = f.fault->create_context();
  ASSERT_TRUE(context.ok());
  EXPECT_EQ(context.value()->start().error(), Error::kSystem);
  EXPECT_EQ(context.value()->start().error(), Error::kSystem);
}

TEST(FaultSubstrate, TimerFaultsScriptable) {
  // kAddTimer script: the first arm attempt fails; the next succeeds.
  FaultPlan plan;
  plan.at(FaultSite::kAddTimer) = {1, 0.0, Error::kNoSupport};
  FaultFixture f(sim::make_saxpy(1000), pmu::sim_x86(), plan);
  auto context = f.fault->create_context();
  ASSERT_TRUE(context.ok());
  int fires = 0;
  auto arm = [&] {
    return context.value()->add_timer(1000, [&] { ++fires; });
  };
  EXPECT_EQ(arm().error(), Error::kNoSupport);
  auto timer = arm();
  ASSERT_TRUE(timer.ok());
  f.machine->run();
  EXPECT_GT(fires, 0);
}

TEST(FaultSubstrate, TimerDropSwallowsFiringsDeterministically) {
  auto count_fires = [](double drop, std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.timer_drop_probability = drop;
    FaultFixture f(sim::make_saxpy(50'000), pmu::sim_x86(), plan,
                   {.charge_costs = false});
    auto context = f.fault->create_context();
    EXPECT_TRUE(context.ok());
    int fires = 0;
    EXPECT_TRUE(context.value()->add_timer(500, [&] { ++fires; }).ok());
    f.machine->run();
    return fires;
  };
  const int full = count_fires(0.0, 7);
  const int half_a = count_fires(0.5, 7);
  const int half_b = count_fires(0.5, 7);
  ASSERT_GT(full, 50);
  EXPECT_EQ(half_a, half_b);  // deterministic drops
  EXPECT_LT(half_a, full);
  EXPECT_GT(half_a, 0);
}

TEST(FaultSubstrate, FullRunMatchesUndecoratedRunWhenQuiet) {
  // End-to-end cross-check: a quiet decorator produces byte-identical
  // counts to no decorator at all.
  std::vector<long long> plain(2), decorated(2);
  {
    SimFixture f(sim::make_matmul(24), pmu::sim_x86());
    papi::EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
    ASSERT_TRUE(set.add_named("PAPI_L1_DCM").ok());
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    ASSERT_TRUE(set.stop(plain).ok());
  }
  {
    FaultFixture f(sim::make_matmul(24), pmu::sim_x86(), no_fault_plan());
    papi::EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_named("PAPI_TOT_INS").ok());
    ASSERT_TRUE(set.add_named("PAPI_L1_DCM").ok());
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    ASSERT_TRUE(set.stop(decorated).ok());
  }
  EXPECT_EQ(plain, decorated);
}

}  // namespace
}  // namespace papirepro::papi
