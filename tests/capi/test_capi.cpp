// End-to-end tests of the C binding.  Global-state: each test creates
// and tears down the library explicitly (PAPI_shutdown), and the suite
// relies on gtest running tests sequentially in one process.
#include "capi/papi.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

namespace {

class CapiSim : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = PAPIrepro_sim_create("sim-x86", "saxpy", 10'000);
    ASSERT_NE(sim_, nullptr);
    ASSERT_EQ(PAPIrepro_bind_sim(sim_), PAPI_OK);
    ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  }
  void TearDown() override {
    PAPI_shutdown();
    PAPIrepro_sim_destroy(sim_);
  }
  PAPIrepro_sim_t* sim_ = nullptr;
};

TEST_F(CapiSim, LowLevelLifecycle) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_FMA_INS), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  EXPECT_EQ(PAPI_num_events(es), 2);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim_, -1);
  long long values[2] = {};
  ASSERT_EQ(PAPI_stop(es, values), PAPI_OK);
  EXPECT_EQ(values[0], 10'000);
  EXPECT_GT(values[1], 10'000);
  ASSERT_EQ(PAPI_destroy_eventset(&es), PAPI_OK);
  EXPECT_EQ(es, PAPI_NULL);
}

TEST_F(CapiSim, ReadAccumReset) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_FMA_INS), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim_, 30'000);
  long long v = 0;
  ASSERT_EQ(PAPI_read(es, &v), PAPI_OK);
  EXPECT_GT(v, 0);
  ASSERT_EQ(PAPI_reset(es), PAPI_OK);
  long long acc = 5;
  PAPIrepro_sim_run(sim_, -1);
  ASSERT_EQ(PAPI_accum(es, &acc), PAPI_OK);
  long long fin = 0;
  ASSERT_EQ(PAPI_stop(es, &fin), PAPI_OK);
  EXPECT_EQ(acc - 5 + fin + v, 10'000);
}

TEST_F(CapiSim, EventNameRoundTrip) {
  int code = 0;
  ASSERT_EQ(PAPI_event_name_to_code("PAPI_TOT_CYC", &code), PAPI_OK);
  EXPECT_EQ(code, PAPI_TOT_CYC);
  char name[PAPI_MAX_STR_LEN];
  ASSERT_EQ(PAPI_event_code_to_name(code, name, sizeof(name)), PAPI_OK);
  EXPECT_STREQ(name, "PAPI_TOT_CYC");
  // Native events work too.
  ASSERT_EQ(PAPI_event_name_to_code("L1D_MISS", &code), PAPI_OK);
  ASSERT_EQ(PAPI_event_code_to_name(code, name, sizeof(name)), PAPI_OK);
  EXPECT_STREQ(name, "L1D_MISS");
  EXPECT_EQ(PAPI_event_name_to_code("BOGUS", &code), PAPI_ENOEVNT);
}

TEST_F(CapiSim, QueryEventAndCounters) {
  EXPECT_EQ(PAPI_query_event(PAPI_FP_OPS), PAPI_OK);
  EXPECT_EQ(PAPI_query_event(PAPI_FDV_INS), PAPI_ENOEVNT);  // x86: absent
  EXPECT_EQ(PAPI_num_hwctrs(), 4);
}

TEST_F(CapiSim, HighLevelFlops) {
  float rtime, ptime, mflops;
  long long flpops;
  ASSERT_EQ(PAPI_flops(&rtime, &ptime, &flpops, &mflops), PAPI_OK);
  PAPIrepro_sim_run(sim_, -1);
  ASSERT_EQ(PAPI_flops(&rtime, &ptime, &flpops, &mflops), PAPI_OK);
  EXPECT_EQ(flpops, 20'000);  // FMA normalized x2
  EXPECT_GT(rtime, 0.0f);
  EXPECT_GT(mflops, 0.0f);
}

TEST_F(CapiSim, HighLevelStartStop) {
  int events[2] = {PAPI_TOT_CYC, PAPI_LD_INS};
  ASSERT_EQ(PAPI_start_counters(events, 2), PAPI_OK);
  PAPIrepro_sim_run(sim_, -1);
  long long values[2] = {};
  ASSERT_EQ(PAPI_stop_counters(values, 2), PAPI_OK);
  EXPECT_GT(values[0], 0);
  EXPECT_EQ(values[1], 20'000);
}

TEST_F(CapiSim, Multiplex) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_set_multiplex(es), PAPI_OK);
  ASSERT_EQ(PAPI_add_named_event(es, "L1D_MISS"), PAPI_OK);
  ASSERT_EQ(PAPI_add_named_event(es, "L1D_ACCESS"), PAPI_OK);
  ASSERT_EQ(PAPI_add_named_event(es, "LD_RETIRED"), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim_, -1);
  long long values[3] = {};
  ASSERT_EQ(PAPI_stop(es, values), PAPI_OK);
  // Estimated loads within 25% on this moderate run.
  EXPECT_NEAR(static_cast<double>(values[2]), 20'000.0, 5'000.0);
}

TEST_F(CapiSim, Overflow) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  static int fires;  // C callbacks carry no closure state
  fires = 0;
  auto handler = [](int, void*, long long, void*) { ++fires; };
  ASSERT_EQ(PAPI_overflow(es, PAPI_TOT_INS, 10'000, 0, handler), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim_, -1);
  long long v;
  ASSERT_EQ(PAPI_stop(es, &v), PAPI_OK);
  EXPECT_GE(fires, 7);
}

TEST_F(CapiSim, Profil) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  unsigned int buckets[64] = {};
  ASSERT_EQ(PAPI_profil(buckets, 64, 0x400000, 0x4000, es, PAPI_TOT_INS,
                        500),
            PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim_, -1);
  long long v;
  ASSERT_EQ(PAPI_stop(es, &v), PAPI_OK);
  unsigned long total = 0;
  for (unsigned int b : buckets) total += b;
  EXPECT_GT(total, 50u);
}

TEST_F(CapiSim, ListEventsAndState) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_CYC), PAPI_OK);
  ASSERT_EQ(PAPI_add_named_event(es, "L1D_MISS"), PAPI_OK);

  int codes[8];
  int number = 8;
  ASSERT_EQ(PAPI_list_events(es, codes, &number), PAPI_OK);
  ASSERT_EQ(number, 2);
  EXPECT_EQ(codes[0], PAPI_TOT_CYC);
  char name[PAPI_MAX_STR_LEN];
  ASSERT_EQ(PAPI_event_code_to_name(codes[1], name, sizeof(name)),
            PAPI_OK);
  EXPECT_STREQ(name, "L1D_MISS");

  // Capacity smaller than membership: count still reported.
  int one_code[1];
  number = 1;
  ASSERT_EQ(PAPI_list_events(es, one_code, &number), PAPI_OK);
  EXPECT_EQ(number, 2);

  int state = 0;
  ASSERT_EQ(PAPI_state(es, &state), PAPI_OK);
  EXPECT_EQ(state, PAPI_STOPPED);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  ASSERT_EQ(PAPI_state(es, &state), PAPI_OK);
  EXPECT_EQ(state, PAPI_RUNNING);
  long long v[2];
  ASSERT_EQ(PAPI_stop(es, v), PAPI_OK);
}

TEST_F(CapiSim, VirtCycles) {
  const long long c0 = PAPI_get_virt_cyc();
  PAPIrepro_sim_run(sim_, -1);
  EXPECT_GT(PAPI_get_virt_cyc(), c0);
}

TEST_F(CapiSim, ProfilArgumentValidation) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  unsigned int buf[16];
  EXPECT_EQ(PAPI_profil(nullptr, 16, 0x400000, 0x4000, es, PAPI_TOT_INS,
                        100),
            PAPI_EINVAL);
  EXPECT_EQ(
      PAPI_profil(buf, 0, 0x400000, 0x4000, es, PAPI_TOT_INS, 100),
      PAPI_EINVAL);
  EXPECT_EQ(PAPI_profil(buf, 16, 0x400000, 0x4000, es, PAPI_FP_OPS, 100),
            PAPI_ENOEVNT);  // not a member event
  // Arm then disarm before ever starting: both succeed.
  ASSERT_EQ(
      PAPI_profil(buf, 16, 0x400000, 0x4000, es, PAPI_TOT_INS, 100),
      PAPI_OK);
  EXPECT_EQ(PAPI_profil(buf, 16, 0x400000, 0x4000, es, PAPI_TOT_INS, 0),
            PAPI_OK);
}

TEST_F(CapiSim, Timers) {
  const long long t0 = PAPI_get_real_usec();
  const long long c0 = PAPI_get_real_cyc();
  PAPIrepro_sim_run(sim_, -1);
  EXPECT_GT(PAPI_get_real_usec(), t0);
  EXPECT_GT(PAPI_get_real_cyc(), c0);
  EXPECT_EQ(PAPI_get_virt_usec(), PAPI_get_real_usec());
}

TEST_F(CapiSim, MemoryInfo) {
  PAPI_mem_info_t info;
  ASSERT_EQ(PAPI_get_memory_info(&info), PAPI_OK);
  EXPECT_GT(info.total_bytes, 0);
  EXPECT_GT(info.process_resident_bytes, 0);
}

TEST_F(CapiSim, SetDomain) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_CYC), PAPI_OK);
  ASSERT_EQ(PAPI_set_domain(es, PAPI_DOM_USER), PAPI_OK);
  EXPECT_EQ(PAPI_set_domain(es, 0), PAPI_EINVAL);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  // Reads inject kernel-context cycles the user-domain counter ignores.
  long long v1 = 0;
  PAPIrepro_sim_run(sim_, 40'000);
  ASSERT_EQ(PAPI_read(es, &v1), PAPI_OK);
  long long user = 0;
  ASSERT_EQ(PAPI_stop(es, &user), PAPI_OK);

  // Same flow with DOM_ALL on a fresh identical simulator: must be
  // strictly larger (the read/stop overhead is visible).
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim_);
  sim_ = PAPIrepro_sim_create("sim-x86", "saxpy", 10'000);
  ASSERT_EQ(PAPIrepro_bind_sim(sim_), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_CYC), PAPI_OK);
  ASSERT_EQ(PAPI_set_domain(es, PAPI_DOM_ALL), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  long long v2 = 0;
  PAPIrepro_sim_run(sim_, 40'000);
  ASSERT_EQ(PAPI_read(es, &v2), PAPI_OK);
  long long all = 0;
  ASSERT_EQ(PAPI_stop(es, &all), PAPI_OK);
  EXPECT_GT(all, user);
}

TEST_F(CapiSim, Strerror) {
  EXPECT_STREQ(PAPI_strerror(PAPI_OK), "No error");
  EXPECT_NE(std::string(PAPI_strerror(PAPI_ECNFLCT)).find("conflict"),
            std::string::npos);
}

TEST(CapiNoInit, ErrorsBeforeInit) {
  ASSERT_EQ(PAPI_is_initialized(), 0);
  int es;
  EXPECT_EQ(PAPI_create_eventset(&es), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_num_hwctrs(), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_query_event(PAPI_TOT_CYC), PAPI_ENOINIT);
}

TEST(CapiHost, HostSubstrateTimersWork) {
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  EXPECT_EQ(PAPI_num_hwctrs(), 0);
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  EXPECT_EQ(PAPI_add_event(es, PAPI_TOT_CYC), PAPI_ENOEVNT);
  EXPECT_GE(PAPI_get_real_usec(), 0);
  PAPI_mem_info_t info;
  EXPECT_EQ(PAPI_get_memory_info(&info), PAPI_OK);
  PAPI_shutdown();
}

TEST_F(CapiSim, ThreadApi) {
  ASSERT_EQ(PAPI_thread_init([] { return 7ul; }), PAPI_OK);
  EXPECT_EQ(PAPI_thread_id(), 7ul);
  ASSERT_EQ(PAPI_register_thread(), PAPI_OK);
  EXPECT_EQ(PAPI_num_threads(), 1);
  ASSERT_EQ(PAPI_unregister_thread(), PAPI_OK);
  EXPECT_EQ(PAPI_num_threads(), 0);
  EXPECT_EQ(PAPI_unregister_thread(), PAPI_EINVAL);
}

TEST_F(CapiSim, ThreadsCountConcurrently) {
  // Two C-API threads, each bound to its own simulated machine, each
  // driving its own EventSet through the one global PAPI instance.
  constexpr int kThreads = 2;
  PAPIrepro_sim_t* sims[kThreads] = {nullptr, nullptr};
  long long counts[kThreads] = {-1, -1};
  for (int t = 0; t < kThreads; ++t) {
    sims[t] = PAPIrepro_sim_create("sim-x86", "saxpy", 5'000 * (t + 1));
    ASSERT_NE(sims[t], nullptr);
  }
  std::thread workers[kThreads];
  for (int t = 0; t < kThreads; ++t) {
    workers[t] = std::thread([&, t] {
      if (PAPIrepro_sim_bind_thread(sims[t]) != PAPI_OK) return;
      int es = PAPI_NULL;
      if (PAPI_create_eventset(&es) != PAPI_OK ||
          PAPI_add_event(es, PAPI_FMA_INS) != PAPI_OK ||
          PAPI_start(es) != PAPI_OK) {
        return;
      }
      PAPIrepro_sim_run(sims[t], -1);
      long long v = -1;
      if (PAPI_stop(es, &v) != PAPI_OK) return;
      counts[t] = v;
      (void)PAPI_destroy_eventset(&es);
      (void)PAPI_unregister_thread();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counts[0], 5'000);
  EXPECT_EQ(counts[1], 10'000);
  for (PAPIrepro_sim_t* s : sims) PAPIrepro_sim_destroy(s);
}

TEST_F(CapiSim, AllocCacheStats) {
  EXPECT_EQ(PAPIrepro_alloc_cache_stats(nullptr), PAPI_EINVAL);

  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_FMA_INS), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  PAPIrepro_alloc_cache_stats_t first = {};
  ASSERT_EQ(PAPIrepro_alloc_cache_stats(&first), PAPI_OK);
  EXPECT_GT(first.misses, 0);
  EXPECT_GT(first.entries, 0);

  // An identical second build replays from the cache: hits move, misses
  // do not.
  int es2 = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es2), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es2, PAPI_FMA_INS), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es2, PAPI_TOT_INS), PAPI_OK);
  PAPIrepro_alloc_cache_stats_t second = {};
  ASSERT_EQ(PAPIrepro_alloc_cache_stats(&second), PAPI_OK);
  EXPECT_EQ(second.misses, first.misses);
  EXPECT_GT(second.hits, first.hits);
  (void)PAPI_destroy_eventset(&es);
  (void)PAPI_destroy_eventset(&es2);
}

TEST(CapiSimBootstrap, RejectsUnknownNames) {
  EXPECT_EQ(PAPIrepro_sim_create("sim-vax", "saxpy", 0), nullptr);
  EXPECT_EQ(PAPIrepro_sim_create("sim-x86", "not_a_kernel", 0), nullptr);
}

TEST(CapiSimBootstrap, AlphaEstimation) {
  PAPIrepro_sim_t* sim =
      PAPIrepro_sim_create("sim-alpha", "saxpy", 100'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  ASSERT_EQ(PAPIrepro_set_estimation(1), PAPI_OK);
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_FP_OPS), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim, -1);
  long long v;
  ASSERT_EQ(PAPI_stop(es, &v), PAPI_OK);
  // FP_OPS = RETIRED_FP + FMA = 2n, estimated from samples.
  EXPECT_NEAR(static_cast<double>(v), 200'000.0, 30'000.0);
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
}

}  // namespace
