// C-binding surface of the batched snapshot reads: the
// PAPIrepro_read_many / PAPIrepro_snapshot_all argument matrix
// (table-driven, like the rest of the C-API error tests), per-entry
// statuses for unknown handles and never-started sets, flag marshalling
// for published and quarantined values, and entry-count/ordering
// semantics of the full-registry walk.  Suite names are Batched* so the
// CI ThreadSanitizer shard runs them alongside the core batched tests.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "capi/papi.h"

namespace {

class BatchedCapi : public ::testing::Test {
 protected:
  void SetUp() override {
    PAPI_shutdown();  // other suites may have left global state behind
    sim_ = PAPIrepro_sim_create("sim-x86", "saxpy", 10'000);
    ASSERT_NE(sim_, nullptr);
    ASSERT_EQ(PAPIrepro_bind_sim(sim_), PAPI_OK);
    ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  }
  void TearDown() override {
    PAPI_shutdown();
    PAPIrepro_sim_destroy(sim_);
  }

  /// One started-then-stopped two-event set; returns its handle.
  int make_stopped_set() {
    int es = PAPI_NULL;
    EXPECT_EQ(PAPI_create_eventset(&es), PAPI_OK);
    EXPECT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
    EXPECT_EQ(PAPI_add_event(es, PAPI_TOT_CYC), PAPI_OK);
    long long v[2] = {};
    EXPECT_EQ(PAPI_start(es), PAPI_OK);
    EXPECT_EQ(PAPI_stop(es, v), PAPI_OK);
    return es;
  }

  PAPIrepro_sim_t* sim_ = nullptr;
};

TEST_F(BatchedCapi, ArgumentMatrix) {
  const int es = make_stopped_set();
  static long long values[8];
  static PAPIrepro_snapshot_t entries[8];
  static int handles[2];
  handles[0] = es;
  handles[1] = es;

  struct BadCall {
    const char* name;
    std::function<int()> call;
  };
  const std::vector<BadCall> cases = {
      {"read_many null handles",
       [] {
         return PAPIrepro_read_many(nullptr, 1, values, 8, entries);
       }},
      {"read_many null values",
       [] {
         return PAPIrepro_read_many(handles, 1, nullptr, 8, entries);
       }},
      {"read_many null entries",
       [] {
         return PAPIrepro_read_many(handles, 1, values, 8, nullptr);
       }},
      {"read_many zero count",
       [] {
         return PAPIrepro_read_many(handles, 0, values, 8, entries);
       }},
      {"read_many negative count",
       [] {
         return PAPIrepro_read_many(handles, -1, values, 8, entries);
       }},
      {"read_many negative capacity",
       [] {
         return PAPIrepro_read_many(handles, 1, values, -1, entries);
       }},
      {"read_many capacity below publication",
       [] {
         return PAPIrepro_read_many(handles, 2, values, 3, entries);
       }},
      {"snapshot_all null entries",
       [] { return PAPIrepro_snapshot_all(nullptr, 8, values, 8); }},
      {"snapshot_all null values",
       [] { return PAPIrepro_snapshot_all(entries, 8, nullptr, 8); }},
      {"snapshot_all negative max_entries",
       [] { return PAPIrepro_snapshot_all(entries, -1, values, 8); }},
      {"snapshot_all negative capacity",
       [] { return PAPIrepro_snapshot_all(entries, 8, values, -1); }},
      {"snapshot_all entry capacity below population",
       [] { return PAPIrepro_snapshot_all(entries, 0, values, 8); }},
      {"snapshot_all value capacity below population",
       [] { return PAPIrepro_snapshot_all(entries, 8, values, 1); }},
  };
  for (const BadCall& c : cases) {
    EXPECT_EQ(c.call(), PAPI_EINVAL) << c.name;
  }
}

TEST_F(BatchedCapi, UninitializedLibraryReportsEnoinit) {
  PAPI_shutdown();
  long long values[4];
  PAPIrepro_snapshot_t entries[4];
  int handles[1] = {1};
  EXPECT_EQ(PAPIrepro_read_many(handles, 1, values, 4, entries),
            PAPI_ENOINIT);
  EXPECT_EQ(PAPIrepro_snapshot_all(entries, 4, values, 4), PAPI_ENOINIT);
}

TEST_F(BatchedCapi, UnknownHandleYieldsPerEntryEnoevst) {
  const int es = make_stopped_set();
  const int handles[2] = {es, 123'456};
  long long values[4] = {};
  PAPIrepro_snapshot_t entries[2];
  ASSERT_EQ(PAPIrepro_read_many(handles, 2, values, 4, entries), PAPI_OK);
  EXPECT_EQ(entries[0].event_set, es);
  EXPECT_EQ(entries[0].status, PAPI_OK);
  EXPECT_EQ(entries[0].num_values, 2);
  EXPECT_EQ(entries[1].status, PAPI_ENOEVST);
  EXPECT_EQ(entries[1].num_values, 0);
}

TEST_F(BatchedCapi, MixedStatesReportStatusAndFlags) {
  // Three sets in the three publication states: running on the calling
  // thread (live read, no flags), started-then-stopped (served from the
  // publication), and never started (per-entry PAPI_ENOTRUN).
  const int stopped = make_stopped_set();
  int never = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&never), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(never, PAPI_TOT_INS), PAPI_OK);
  int running = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&running), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(running, PAPI_TOT_INS), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(running, PAPI_TOT_CYC), PAPI_OK);
  ASSERT_EQ(PAPI_start(running), PAPI_OK);
  PAPIrepro_sim_run(sim_, 2'000);

  const int handles[3] = {running, stopped, never};
  long long values[8] = {};
  PAPIrepro_snapshot_t entries[3];
  ASSERT_EQ(PAPIrepro_read_many(handles, 3, values, 8, entries), PAPI_OK);

  EXPECT_EQ(entries[0].status, PAPI_OK);
  EXPECT_EQ(entries[0].num_values, 2);
  EXPECT_EQ(entries[0].flags, PAPIREPRO_READ_VALID);
  long long direct[2] = {};
  ASSERT_EQ(PAPI_read(running, direct), PAPI_OK);
  EXPECT_EQ(values[entries[0].first_value], direct[0]);

  EXPECT_EQ(entries[1].status, PAPI_OK);
  EXPECT_EQ(entries[1].num_values, 2);
  EXPECT_NE(entries[1].flags & PAPIREPRO_READ_PUBLISHED, 0);

  EXPECT_EQ(entries[2].status, PAPI_ENOTRUN);
  EXPECT_EQ(entries[2].num_values, 0);

  long long stopv[2] = {};
  ASSERT_EQ(PAPI_stop(running, stopv), PAPI_OK);

  // snapshot_all: every set appears, handle-ordered, same statuses.
  PAPIrepro_snapshot_t all[8];
  long long all_values[16] = {};
  const int n = PAPIrepro_snapshot_all(all, 8, all_values, 16);
  ASSERT_EQ(n, 3);
  for (int i = 1; i < n; ++i) {
    EXPECT_LT(all[i - 1].event_set, all[i].event_set);
  }
  for (int i = 0; i < n; ++i) {
    if (all[i].event_set == never) {
      EXPECT_EQ(all[i].status, PAPI_ENOTRUN);
    } else {
      EXPECT_EQ(all[i].status, PAPI_OK);
      EXPECT_EQ(all[i].num_values, 2);
    }
  }
}

TEST_F(BatchedCapi, DestroyedSetLeavesTheSnapshot) {
  const int a = make_stopped_set();
  const int b = make_stopped_set();
  PAPIrepro_snapshot_t entries[4];
  long long values[8];
  ASSERT_EQ(PAPIrepro_snapshot_all(entries, 4, values, 8), 2);
  int doomed = b;
  ASSERT_EQ(PAPI_destroy_eventset(&doomed), PAPI_OK);
  ASSERT_EQ(PAPIrepro_snapshot_all(entries, 4, values, 8), 1);
  EXPECT_EQ(entries[0].event_set, a);
}

// A quarantined component must not fail the batch: the live read's
// PAPI_ECMPQUAR downgrades to the last publication with the stale and
// quarantined flags set — same script as the health C-API test, driven
// through the batched path.
TEST(BatchedCapiFault, QuarantinedSetServesPublicationWithFlags) {
  PAPI_shutdown();
  PAPIrepro_sim_t* sim =
      PAPIrepro_sim_create("sim-x86", "saxpy", 300'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);
  PAPIrepro_fault_plan_t plan = {};
  plan.seed = 7;
  plan.target_component = 2;  // mem only
  plan.read_fail_after = 1;   // first read latches good values
  plan.read_fail_times = 50;  // stays down for the whole test
  ASSERT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_OK);
  ASSERT_EQ(PAPIrepro_inject_faults(1), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  PAPIrepro_health_policy_t policy;
  ASSERT_EQ(PAPIrepro_get_health_policy(&policy), PAPI_OK);
  policy.max_consecutive_exhaustions = 2;
  ASSERT_EQ(PAPIrepro_set_health_policy(&policy), PAPI_OK);

  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  ASSERT_EQ(PAPI_add_named_event(es, "mem::L2_MISSES"), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);

  long long v[2] = {};
  int flags[2] = {};
  PAPIrepro_sim_run(sim, 5'000);
  ASSERT_EQ(PAPIrepro_read_ex(es, v, flags), PAPI_OK);  // latch
  const long long mem_latched = v[1];
  PAPIrepro_sim_run(sim, 5'000);
  ASSERT_EQ(PAPIrepro_read_ex(es, v, flags), PAPI_OK);  // exhaustion 1
  PAPIrepro_sim_run(sim, 5'000);
  ASSERT_EQ(PAPIrepro_read_ex(es, v, flags), PAPI_OK);  // 2 -> quarantine
  PAPIrepro_component_health_t h;
  ASSERT_EQ(PAPIrepro_get_component_health(1, &h), PAPI_OK);
  ASSERT_EQ(h.state, PAPIREPRO_HEALTH_QUARANTINED);

  // The plain read fails fast; the batch survives on the publication.
  EXPECT_EQ(PAPI_read(es, v), PAPI_ECMPQUAR);
  const int handles[1] = {es};
  long long batch_values[2] = {};
  PAPIrepro_snapshot_t entries[1];
  ASSERT_EQ(PAPIrepro_read_many(handles, 1, batch_values, 2, entries),
            PAPI_OK);
  EXPECT_EQ(entries[0].status, PAPI_OK);
  EXPECT_EQ(entries[0].num_values, 2);
  EXPECT_NE(entries[0].flags & PAPIREPRO_READ_PUBLISHED, 0);
  EXPECT_NE(entries[0].flags & PAPIREPRO_READ_STALE, 0);
  EXPECT_NE(entries[0].flags & PAPIREPRO_READ_QUARANTINED, 0);
  EXPECT_EQ(batch_values[1], mem_latched);

  // stop() still reads the quarantined slice, so it reports the
  // quarantine too; shutdown cleans the running set up regardless.
  long long stopv[2] = {};
  EXPECT_EQ(PAPI_stop(es, stopv), PAPI_ECMPQUAR);
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
}

}  // namespace
