// C-binding surface of the component health monitor: error-code
// plumbing (PAPI_ECMPQUAR), the policy get/set round trip,
// PAPIrepro_get_component_health marshalling, the partial-failure
// PAPIrepro_read_ex, and a staged end-to-end outage/recovery run
// against the mem component.  Suites are named Health* so the CI
// ThreadSanitizer shard picks them up with the rest of the health
// tests.
#include <gtest/gtest.h>

#include <cstring>

#include "capi/papi.h"

namespace {

class HealthCapi : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = PAPIrepro_sim_create("sim-x86", "saxpy", 10'000);
    ASSERT_NE(sim_, nullptr);
    ASSERT_EQ(PAPIrepro_bind_sim(sim_), PAPI_OK);
    ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  }
  void TearDown() override {
    PAPI_shutdown();
    PAPIrepro_sim_destroy(sim_);
  }
  PAPIrepro_sim_t* sim_ = nullptr;
};

TEST_F(HealthCapi, ErrorCodeAndStateConstants) {
  EXPECT_EQ(PAPI_ECMPQUAR, -21);
  EXPECT_STREQ(PAPI_strerror(PAPI_ECMPQUAR),
               "Component is quarantined by the health monitor");
  EXPECT_EQ(PAPIREPRO_HEALTH_HEALTHY, 0);
  EXPECT_EQ(PAPIREPRO_HEALTH_DEGRADED, 1);
  EXPECT_EQ(PAPIREPRO_HEALTH_QUARANTINED, 2);
  EXPECT_EQ(PAPIREPRO_HEALTH_PROBATION, 3);
}

TEST_F(HealthCapi, ComponentHealthQueryArgumentMatrix) {
  EXPECT_EQ(PAPIrepro_get_component_health(0, nullptr), PAPI_EINVAL);
  PAPIrepro_component_health_t h;
  EXPECT_EQ(PAPIrepro_get_component_health(-1, &h), PAPI_ENOCMP);
  EXPECT_EQ(PAPIrepro_get_component_health(99, &h), PAPI_ENOCMP);
  // Sim-bound init registers cpu + mem + net; all start healthy.
  for (int c = 0; c < 3; ++c) {
    ASSERT_EQ(PAPIrepro_get_component_health(c, &h), PAPI_OK) << c;
    EXPECT_EQ(h.component, c);
    EXPECT_EQ(h.state, PAPIREPRO_HEALTH_HEALTHY);
    EXPECT_EQ(h.quarantines, 0);
    EXPECT_EQ(h.fail_fasts, 0);
    EXPECT_EQ(h.window_ops, 0);
    EXPECT_EQ(h.last_error, PAPI_OK);
  }
}

TEST_F(HealthCapi, PolicyRoundTripAndValidation) {
  EXPECT_EQ(PAPIrepro_get_health_policy(nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPIrepro_set_health_policy(nullptr), PAPI_EINVAL);

  PAPIrepro_health_policy_t p;
  ASSERT_EQ(PAPIrepro_get_health_policy(&p), PAPI_OK);
  EXPECT_EQ(p.enabled, 1);
  EXPECT_EQ(p.max_consecutive_exhaustions, 3);
  EXPECT_EQ(p.window_min_ops, 16);
  EXPECT_DOUBLE_EQ(p.failure_rate_threshold, 0.5);
  EXPECT_EQ(p.probation_successes, 2);
  EXPECT_EQ(p.probe_cooldown_usec, 100);
  EXPECT_EQ(p.probe_cooldown_max_usec, 1'000'000);

  PAPIrepro_health_policy_t bad = p;
  bad.max_consecutive_exhaustions = 0;
  EXPECT_EQ(PAPIrepro_set_health_policy(&bad), PAPI_EINVAL);
  bad = p;
  bad.window_min_ops = -1;
  EXPECT_EQ(PAPIrepro_set_health_policy(&bad), PAPI_EINVAL);
  bad = p;
  bad.probation_successes = 0;
  EXPECT_EQ(PAPIrepro_set_health_policy(&bad), PAPI_EINVAL);
  bad = p;
  bad.probe_cooldown_usec = -5;
  EXPECT_EQ(PAPIrepro_set_health_policy(&bad), PAPI_EINVAL);
  bad = p;
  bad.failure_rate_threshold = 1.5;  // library-side range check
  EXPECT_EQ(PAPIrepro_set_health_policy(&bad), PAPI_EINVAL);
  bad = p;
  bad.probe_cooldown_max_usec = 10;  // cap below the base
  EXPECT_EQ(PAPIrepro_set_health_policy(&bad), PAPI_EINVAL);

  p.max_consecutive_exhaustions = 5;
  p.window_min_ops = 32;
  p.failure_rate_threshold = 0.25;
  p.probation_successes = 1;
  p.probe_cooldown_usec = 250;
  p.probe_cooldown_max_usec = 4'000;
  ASSERT_EQ(PAPIrepro_set_health_policy(&p), PAPI_OK);
  PAPIrepro_health_policy_t got;
  ASSERT_EQ(PAPIrepro_get_health_policy(&got), PAPI_OK);
  EXPECT_EQ(got.max_consecutive_exhaustions, 5);
  EXPECT_EQ(got.window_min_ops, 32);
  EXPECT_DOUBLE_EQ(got.failure_rate_threshold, 0.25);
  EXPECT_EQ(got.probation_successes, 1);
  EXPECT_EQ(got.probe_cooldown_usec, 250);
  EXPECT_EQ(got.probe_cooldown_max_usec, 4'000);
}

TEST_F(HealthCapi, ReadExArgumentMatrixAndCleanRun) {
  long long values[2] = {};
  int flags[2] = {};
  EXPECT_EQ(PAPIrepro_read_ex(12345, values, flags), PAPI_ENOEVST);

  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  EXPECT_EQ(PAPIrepro_read_ex(es, nullptr, flags), PAPI_EINVAL);
  EXPECT_EQ(PAPIrepro_read_ex(es, values, nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPIrepro_read_ex(es, values, flags), PAPI_ENOTRUN);

  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim_, 3'000);
  flags[0] = 99;
  ASSERT_EQ(PAPIrepro_read_ex(es, values, flags), PAPI_OK);
  EXPECT_GT(values[0], 0);
  EXPECT_EQ(flags[0], PAPIREPRO_READ_VALID);
  long long final_values[1] = {};
  ASSERT_EQ(PAPI_stop(es, final_values), PAPI_OK);
}

TEST(HealthCapiInit, UninitializedPathsReturnEnoinit) {
  PAPI_shutdown();
  PAPIrepro_component_health_t h;
  EXPECT_EQ(PAPIrepro_get_component_health(0, &h), PAPI_ENOINIT);
  PAPIrepro_health_policy_t p = {};
  p.max_consecutive_exhaustions = 1;
  p.probation_successes = 1;
  EXPECT_EQ(PAPIrepro_set_health_policy(&p), PAPI_ENOINIT);
  EXPECT_EQ(PAPIrepro_get_health_policy(&p), PAPI_ENOINIT);
  long long values[1];
  int flags[1];
  EXPECT_EQ(PAPIrepro_read_ex(0, values, flags), PAPI_ENOINIT);
}

// End to end through the C API: the mem component goes hard-down for a
// scripted window while a spanning EventSet keeps reading.  cpu values
// stay fresh throughout, mem values latch with stale/quarantined flags,
// fail-fast rejections stop touching the substrate, and once the
// outage script runs dry a probe returns the component to service.
TEST(HealthCapiFault, SpanningSetQuarantineAndRecovery) {
  PAPI_shutdown();
  PAPIrepro_sim_t* sim =
      PAPIrepro_sim_create("sim-x86", "saxpy", 300'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);

  PAPIrepro_fault_plan_t plan = {};
  plan.seed = 7;
  plan.target_component = 2;  // mem only (N-1 = component 1)
  plan.read_fail_after = 1;   // first read latches good values
  plan.read_fail_times = 6;   // two retry-exhausted reads, then recover
  ASSERT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_OK);
  ASSERT_EQ(PAPIrepro_inject_faults(1), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);

  PAPIrepro_health_policy_t policy;
  ASSERT_EQ(PAPIrepro_get_health_policy(&policy), PAPI_OK);
  policy.max_consecutive_exhaustions = 2;
  policy.probation_successes = 1;
  // Cool-down far above per-read overhead, far below the workload's
  // remaining cycles: read 4 lands inside it, the final run clears it.
  policy.probe_cooldown_usec = 200;
  policy.probe_cooldown_max_usec = 400;
  ASSERT_EQ(PAPIrepro_set_health_policy(&policy), PAPI_OK);

  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  ASSERT_EQ(PAPI_add_named_event(es, "mem::L2_MISSES"), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);

  long long v[2] = {};
  int flags[2] = {};

  // Read 1: both components healthy.
  PAPIrepro_sim_run(sim, 5'000);
  ASSERT_EQ(PAPIrepro_read_ex(es, v, flags), PAPI_OK);
  EXPECT_EQ(flags[0], PAPIREPRO_READ_VALID);
  EXPECT_EQ(flags[1], PAPIREPRO_READ_VALID);
  const long long cpu_1 = v[0];
  const long long mem_latched = v[1];

  // Reads 2 and 3: the outage window.  Each read burns one full retry
  // budget against mem; cpu stays fresh, mem serves the latched value.
  PAPIrepro_sim_run(sim, 5'000);
  ASSERT_EQ(PAPIrepro_read_ex(es, v, flags), PAPI_OK);
  EXPECT_EQ(flags[0], PAPIREPRO_READ_VALID);
  EXPECT_GT(v[0], cpu_1);
  EXPECT_EQ(flags[1], PAPIREPRO_READ_STALE);
  EXPECT_EQ(v[1], mem_latched);

  PAPIrepro_sim_run(sim, 5'000);
  ASSERT_EQ(PAPIrepro_read_ex(es, v, flags), PAPI_OK);
  EXPECT_EQ(flags[1], PAPIREPRO_READ_STALE);

  PAPIrepro_component_health_t h;
  ASSERT_EQ(PAPIrepro_get_component_health(1, &h), PAPI_OK);
  ASSERT_EQ(h.state, PAPIREPRO_HEALTH_QUARANTINED);
  EXPECT_EQ(h.quarantines, 1);
  EXPECT_EQ(h.last_error, PAPI_ECNFLCT);

  // Read 4, inside the cool-down: fail fast.  The plain read() contract
  // surfaces the quarantine; read_ex still serves the cpu slice.
  EXPECT_EQ(PAPI_read(es, v), PAPI_ECMPQUAR);
  ASSERT_EQ(PAPIrepro_read_ex(es, v, flags), PAPI_OK);
  EXPECT_EQ(flags[0], PAPIREPRO_READ_VALID);
  EXPECT_GT(v[0], cpu_1);
  EXPECT_EQ(flags[1],
            PAPIREPRO_READ_STALE | PAPIREPRO_READ_QUARANTINED);
  EXPECT_EQ(v[1], mem_latched);
  ASSERT_EQ(PAPIrepro_get_component_health(1, &h), PAPI_OK);
  EXPECT_GE(h.fail_fasts, 2);

  // Run the rest of the workload: the cool-down elapses in sim time and
  // the fault script is exhausted, so the next read probes and heals.
  PAPIrepro_sim_run(sim, -1);
  ASSERT_EQ(PAPIrepro_read_ex(es, v, flags), PAPI_OK);
  EXPECT_EQ(flags[0], PAPIREPRO_READ_VALID);
  EXPECT_EQ(flags[1], PAPIREPRO_READ_VALID);
  EXPECT_GE(v[1], mem_latched);
  ASSERT_EQ(PAPIrepro_get_component_health(1, &h), PAPI_OK);
  EXPECT_EQ(h.state, PAPIREPRO_HEALTH_HEALTHY);
  EXPECT_EQ(h.quarantines, 1);
  EXPECT_GE(h.probes, 1);

  PAPIrepro_telemetry_t telemetry;
  ASSERT_EQ(PAPIrepro_get_telemetry(&telemetry), PAPI_OK);
  EXPECT_GE(telemetry.health_transitions, 4ull);
  EXPECT_GE(telemetry.health_fail_fasts, 2ull);
  EXPECT_GE(telemetry.health_probes, 1ull);

  long long final_values[2] = {};
  ASSERT_EQ(PAPI_stop(es, final_values), PAPI_OK);
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
}

}  // namespace
