// Table-driven C-API error matrix: every EventSet entry point against
// the documented failure classes — uninitialized library, bad handle,
// freed handle, not-running set, null out-pointer — plus the
// fault-injection extension surface (PAPIrepro_set_fault_plan /
// PAPIrepro_inject_faults / PAPIrepro_set_retry) end to end.  Real PAPI
// earned its portability by returning the *same* error codes on every
// substrate; this suite pins the contract down so substrate or hardening
// changes cannot silently shift a code.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "capi/papi.h"

namespace {

/// One entry point driven with an arbitrary EventSet handle.
struct HandleCase {
  const char* name;
  std::function<int(int handle)> call;
};

std::vector<HandleCase> handle_cases() {
  static long long values[32];
  static int codes[32];
  static int number;
  static int state;
  return {
      {"PAPI_add_event",
       [](int h) { return PAPI_add_event(h, PAPI_TOT_INS); }},
      {"PAPI_add_named_event",
       [](int h) { return PAPI_add_named_event(h, "PAPI_TOT_INS"); }},
      {"PAPI_remove_event",
       [](int h) { return PAPI_remove_event(h, PAPI_TOT_INS); }},
      {"PAPI_num_events", [](int h) { return PAPI_num_events(h); }},
      {"PAPI_set_multiplex", [](int h) { return PAPI_set_multiplex(h); }},
      {"PAPI_set_domain",
       [](int h) { return PAPI_set_domain(h, PAPI_DOM_USER); }},
      {"PAPI_start", [](int h) { return PAPI_start(h); }},
      {"PAPI_stop", [](int h) { return PAPI_stop(h, values); }},
      {"PAPI_read", [](int h) { return PAPI_read(h, values); }},
      {"PAPI_accum", [](int h) { return PAPI_accum(h, values); }},
      {"PAPI_reset", [](int h) { return PAPI_reset(h); }},
      {"PAPI_overflow",
       [](int h) {
         return PAPI_overflow(h, PAPI_TOT_INS, 1000, 0,
                              [](int, void*, long long, void*) {});
       }},
      {"PAPI_profil",
       [](int h) {
         static unsigned int pbuf[64];
         return PAPI_profil(pbuf, 64, 0x400000, 0, h, PAPI_TOT_INS, 1000);
       }},
      {"PAPI_list_events",
       [](int h) {
         number = 32;
         return PAPI_list_events(h, codes, &number);
       }},
      {"PAPI_state", [](int h) { return PAPI_state(h, &state); }},
  };
}

class CapiErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    PAPI_shutdown();  // other suites may have left global state behind
    sim_ = PAPIrepro_sim_create("sim-x86", "saxpy", 10'000);
    ASSERT_NE(sim_, nullptr);
    ASSERT_EQ(PAPIrepro_bind_sim(sim_), PAPI_OK);
    ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  }
  void TearDown() override {
    PAPI_shutdown();
    PAPIrepro_sim_destroy(sim_);
  }
  PAPIrepro_sim_t* sim_ = nullptr;
};

TEST(CapiErrorsNoInit, EveryEntryPointReportsNoInit) {
  PAPI_shutdown();
  ASSERT_EQ(PAPI_is_initialized(), 0);
  for (const HandleCase& c : handle_cases()) {
    EXPECT_EQ(c.call(0), PAPI_ENOINIT) << c.name;
  }
  int es;
  long long values[2];
  int events[2] = {PAPI_TOT_CYC, PAPI_TOT_INS};
  EXPECT_EQ(PAPI_create_eventset(&es), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_destroy_eventset(&es), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_thread_init([] { return 0ul; }), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_register_thread(), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_num_threads(), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_start_counters(events, 2), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_stop_counters(values, 2), PAPI_ENOINIT);
  EXPECT_EQ(PAPIrepro_set_retry(3, 0), PAPI_ENOINIT);
  EXPECT_EQ(PAPIrepro_set_estimation(1), PAPI_ENOINIT);
  EXPECT_EQ(PAPIrepro_set_sampling(1, 0), PAPI_ENOINIT);
  PAPIrepro_sampling_stats_t stats;
  EXPECT_EQ(PAPIrepro_sampling_stats(&stats), PAPI_ENOINIT);
  PAPIrepro_telemetry_t telemetry;
  EXPECT_EQ(PAPIrepro_get_telemetry(&telemetry), PAPI_ENOINIT);
  EXPECT_EQ(PAPIrepro_set_trace(1, 0), PAPI_ENOINIT);
  EXPECT_EQ(PAPIrepro_dump_trace("trace.json", PAPIREPRO_TRACE_JSON),
            PAPI_ENOINIT);
  double ratio = 0.0;
  EXPECT_EQ(PAPIrepro_overhead_ratio(0, &ratio), PAPI_ENOINIT);
  PAPIrepro_component_info_t info;
  EXPECT_EQ(PAPI_num_components(), PAPI_ENOINIT);
  EXPECT_EQ(PAPI_get_component_info(0, &info), PAPI_ENOINIT);
  EXPECT_EQ(PAPIrepro_set_component_enabled(0, 1), PAPI_ENOINIT);
}

TEST_F(CapiErrors, BadHandleReportsNoEventSet) {
  for (const HandleCase& c : handle_cases()) {
    EXPECT_EQ(c.call(9999), PAPI_ENOEVST) << c.name << " (bogus)";
    EXPECT_EQ(c.call(PAPI_NULL), PAPI_ENOEVST) << c.name << " (NULL)";
  }
}

TEST_F(CapiErrors, FreedHandleReportsNoEventSet) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  const int freed = es;
  ASSERT_EQ(PAPI_destroy_eventset(&es), PAPI_OK);
  ASSERT_EQ(es, PAPI_NULL);
  for (const HandleCase& c : handle_cases()) {
    EXPECT_EQ(c.call(freed), PAPI_ENOEVST) << c.name;
  }
}

TEST_F(CapiErrors, NotRunningSetReportsNotRunning) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  long long values[1];
  // Never started: no counts to stop, read, or accumulate.
  EXPECT_EQ(PAPI_stop(es, values), PAPI_ENOTRUN);
  EXPECT_EQ(PAPI_read(es, values), PAPI_ENOTRUN);
  EXPECT_EQ(PAPI_accum(es, values), PAPI_ENOTRUN);
  // Started then stopped: stop again is ENOTRUN, but read still serves
  // the final snapshot (the PAPI read-after-stop contract).
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  EXPECT_EQ(PAPI_start(es), PAPI_EISRUN);  // double start, while here
  ASSERT_EQ(PAPI_stop(es, values), PAPI_OK);
  EXPECT_EQ(PAPI_stop(es, values), PAPI_ENOTRUN);
  EXPECT_EQ(PAPI_read(es, values), PAPI_OK);
}

TEST_F(CapiErrors, NullOutPointersReportInval) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  EXPECT_EQ(PAPI_read(es, nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_accum(es, nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_state(es, nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_list_events(es, nullptr, nullptr), PAPI_EINVAL);
  // PAPI_stop with null values discards counts but must still stop.
  EXPECT_EQ(PAPI_stop(es, nullptr), PAPI_OK);

  EXPECT_EQ(PAPI_create_eventset(nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_destroy_eventset(nullptr), PAPI_EINVAL);
  int code;
  char name[PAPI_MAX_STR_LEN];
  EXPECT_EQ(PAPI_event_name_to_code(nullptr, &code), PAPI_EINVAL);
  EXPECT_EQ(PAPI_event_name_to_code("PAPI_TOT_INS", nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_event_code_to_name(PAPI_TOT_INS, nullptr, 8), PAPI_EINVAL);
  EXPECT_EQ(PAPI_event_code_to_name(PAPI_TOT_INS, name, 0), PAPI_EINVAL);
  EXPECT_EQ(PAPI_add_named_event(es, nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_get_memory_info(nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_thread_init(nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_start_counters(nullptr, 1), PAPI_EINVAL);
  EXPECT_EQ(PAPI_read_counters(nullptr, 1), PAPI_EINVAL);
}

TEST_F(CapiErrors, UnknownEventCodesReportNoEvent) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  const int bogus = 0x7f123456;
  EXPECT_EQ(PAPI_add_event(es, bogus), PAPI_ENOEVNT);
  EXPECT_EQ(PAPI_add_named_event(es, "NOT_AN_EVENT"), PAPI_ENOEVNT);
  EXPECT_EQ(PAPI_remove_event(es, PAPI_TOT_INS), PAPI_ENOEVNT);
  char name[PAPI_MAX_STR_LEN];
  // A preset index beyond the table decodes to no event.
  EXPECT_EQ(PAPI_event_code_to_name(
                static_cast<int>(PAPI_PRESET_MASK | 0x7000), name,
                sizeof(name)),
            PAPI_ENOEVNT);
}

// ---- component registry surface ----

TEST_F(CapiErrors, ComponentInfoMatrix) {
  // A sim-bound init registers cpu + mem + net.
  ASSERT_EQ(PAPI_num_components(), 3);
  PAPIrepro_component_info_t info;
  EXPECT_EQ(PAPI_get_component_info(0, nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPI_get_component_info(-1, &info), PAPI_ENOCMP);
  EXPECT_EQ(PAPI_get_component_info(99, &info), PAPI_ENOCMP);
  ASSERT_EQ(PAPI_get_component_info(0, &info), PAPI_OK);
  EXPECT_STREQ(info.name, "cpu");
  EXPECT_EQ(info.id, 0);
  EXPECT_GT(info.num_counters, 0);
  EXPECT_EQ(info.enabled, 1);
  ASSERT_EQ(PAPI_get_component_info(1, &info), PAPI_OK);
  EXPECT_STREQ(info.name, "mem");
  ASSERT_EQ(PAPI_get_component_info(2, &info), PAPI_OK);
  EXPECT_STREQ(info.name, "net");

  EXPECT_EQ(PAPIrepro_set_component_enabled(-1, 0), PAPI_ENOCMP);
  EXPECT_EQ(PAPIrepro_set_component_enabled(99, 0), PAPI_ENOCMP);
}

TEST_F(CapiErrors, ComponentNamespaceAndDisableErrorPaths) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  // Unknown namespace prefix is a component error, not an event error.
  EXPECT_EQ(PAPI_add_named_event(es, "gpu::CYCLES"), PAPI_ENOCMP);
  int code = 0;
  EXPECT_EQ(PAPI_event_name_to_code("gpu::CYCLES", &code), PAPI_ENOCMP);
  // Known prefix, unknown name inside it.
  EXPECT_EQ(PAPI_add_named_event(es, "mem::NOT_AN_EVENT"), PAPI_ENOEVNT);

  // Soft-disabling the mem component turns new adds into ECMPDIS.
  ASSERT_EQ(PAPIrepro_set_component_enabled(1, 0), PAPI_OK);
  EXPECT_EQ(PAPI_add_named_event(es, "mem::BANDWIDTH_RD"), PAPI_ECMPDIS);
  PAPIrepro_component_info_t info;
  ASSERT_EQ(PAPI_get_component_info(1, &info), PAPI_OK);
  EXPECT_EQ(info.enabled, 0);
  ASSERT_EQ(PAPIrepro_set_component_enabled(1, 1), PAPI_OK);
  EXPECT_EQ(PAPI_add_named_event(es, "mem::BANDWIDTH_RD"), PAPI_OK);
}

TEST_F(CapiErrors, CrossComponentEventSetThroughCApi) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_CYC), PAPI_OK);

  // Name -> code -> name round-trips through the component field.
  int bw_code = 0;
  ASSERT_EQ(PAPI_event_name_to_code("mem::BANDWIDTH_RD", &bw_code),
            PAPI_OK);
  EXPECT_EQ(PAPIREPRO_EVENT_COMPONENT(bw_code), 1);
  char name[PAPI_MAX_STR_LEN];
  ASSERT_EQ(PAPI_event_code_to_name(bw_code, name, sizeof name), PAPI_OK);
  EXPECT_STREQ(name, "mem::BANDWIDTH_RD");
  ASSERT_EQ(PAPI_add_event(es, bw_code), PAPI_OK);
  ASSERT_EQ(PAPI_add_named_event(es, "net::PAPI_MSG_SNT"), PAPI_OK);
  EXPECT_EQ(PAPI_num_events(es), 3);

  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim_, -1);
  long long values[3] = {-1, -1, -1};
  ASSERT_EQ(PAPI_read(es, values), PAPI_OK);
  ASSERT_EQ(PAPI_stop(es, values), PAPI_OK);
  EXPECT_GT(values[0], 0);  // cpu::PAPI_TOT_CYC
  EXPECT_GT(values[1], 0);  // mem::BANDWIDTH_RD: saxpy misses in L2
  EXPECT_EQ(values[2], 0);  // net::PAPI_MSG_SNT: saxpy sends nothing

  // Per-component attribution is visible through the telemetry struct.
  PAPIrepro_telemetry_t t = {};
  ASSERT_EQ(PAPIrepro_get_telemetry(&t), PAPI_OK);
  EXPECT_EQ(t.num_components, 3);
  EXPECT_EQ(t.component_starts[0], 1);
  EXPECT_EQ(t.component_starts[1], 1);
  EXPECT_EQ(t.component_starts[2], 1);
  EXPECT_EQ(t.component_stops[1], 1);
  EXPECT_GE(t.component_reads[1], 1);
  EXPECT_EQ(t.component_reads[0], t.component_reads[2]);
}

// ---- overflow / profil argument matrix ----

TEST_F(CapiErrors, ProfilArgumentMatrix) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  static unsigned int buf[64];

  struct Case {
    const char* name;
    unsigned int* buf;
    unsigned int bufsiz;
    unsigned int scale;
    int event_code;
    int threshold;
    int expected;
  };
  const Case cases[] = {
      {"null buffer", nullptr, 64, 0, PAPI_TOT_INS, 1000, PAPI_EINVAL},
      {"zero bufsiz", buf, 0, 0, PAPI_TOT_INS, 1000, PAPI_EINVAL},
      {"negative threshold", buf, 64, 0, PAPI_TOT_INS, -1, PAPI_EINVAL},
      {"scale above full-byte", buf, 64, 0x10001, PAPI_TOT_INS, 1000,
       PAPI_EINVAL},
      {"scale way out of range", buf, 64, 0x20000, PAPI_TOT_INS, 1000,
       PAPI_EINVAL},
      {"unknown event", buf, 64, 0, 0x7f123456, 1000, PAPI_ENOEVNT},
      {"event not in set", buf, 64, 0, PAPI_TOT_CYC, 1000, PAPI_ENOEVNT},
      {"stop when never armed", buf, 64, 0, PAPI_TOT_INS, 0,
       PAPI_ENOEVNT},
      {"defaulted scale ok", buf, 64, 0, PAPI_TOT_INS, 1000, PAPI_OK},
      {"explicit full-byte scale ok", buf, 64, 0x10000, PAPI_TOT_INS,
       1000, PAPI_OK},
      {"threshold 0 stops", buf, 64, 0, PAPI_TOT_INS, 0, PAPI_OK},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(PAPI_profil(c.buf, c.bufsiz, 0x400000, c.scale, es,
                          c.event_code, c.threshold),
              c.expected)
        << c.name;
  }
}

TEST_F(CapiErrors, OverflowArgumentMatrix) {
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  const PAPI_overflow_handler_t handler = [](int, void*, long long,
                                             void*) {};

  struct Case {
    const char* name;
    int event_code;
    int threshold;
    PAPI_overflow_handler_t handler;
    int expected;
  };
  const Case cases[] = {
      {"null handler", PAPI_TOT_INS, 1000, nullptr, PAPI_EINVAL},
      {"negative threshold", PAPI_TOT_INS, -5, handler, PAPI_EINVAL},
      {"unknown event", 0x7f123456, 1000, handler, PAPI_ENOEVNT},
      {"event not in set", PAPI_TOT_CYC, 1000, handler, PAPI_ENOEVNT},
      {"clear when never armed", PAPI_TOT_INS, 0, handler, PAPI_ENOEVNT},
      {"arm ok", PAPI_TOT_INS, 1000, handler, PAPI_OK},
      {"threshold 0 clears", PAPI_TOT_INS, 0, handler, PAPI_OK},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(PAPI_overflow(es, c.event_code, c.threshold, 0, c.handler),
              c.expected)
        << c.name;
  }
}

TEST_F(CapiErrors, SamplingKnobMatrix) {
  EXPECT_EQ(PAPIrepro_sampling_stats(nullptr), PAPI_EINVAL);
  // Ring capacity beyond the supported maximum (1 << 20 records).
  EXPECT_EQ(PAPIrepro_set_sampling(1, 1ull << 21), PAPI_EINVAL);

  ASSERT_EQ(PAPIrepro_set_sampling(1, 0), PAPI_OK);
  PAPIrepro_sampling_stats_t stats = {};
  ASSERT_EQ(PAPIrepro_sampling_stats(&stats), PAPI_OK);
  EXPECT_EQ(stats.async, 1);
  EXPECT_EQ(stats.ring_capacity, 1024);  // 0 keeps the default

  ASSERT_EQ(PAPIrepro_set_sampling(1, 4096), PAPI_OK);
  ASSERT_EQ(PAPIrepro_sampling_stats(&stats), PAPI_OK);
  EXPECT_EQ(stats.ring_capacity, 4096);

  ASSERT_EQ(PAPIrepro_set_sampling(0, 0), PAPI_OK);
  ASSERT_EQ(PAPIrepro_sampling_stats(&stats), PAPI_OK);
  EXPECT_EQ(stats.async, 0);
  EXPECT_EQ(stats.ring_capacity, 4096);  // capacity survives the toggle
}

TEST(CapiSampling, AsyncProfilDeliversHistogramAndStats) {
  PAPI_shutdown();
  PAPIrepro_sim_t* sim = PAPIrepro_sim_create("sim-power3", "saxpy",
                                              10'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  ASSERT_EQ(PAPIrepro_set_sampling(1, 8192), PAPI_OK);

  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  unsigned int buf[256] = {};
  // 0x400000 is the simulator's text base (sim::kTextBase).
  ASSERT_EQ(PAPI_profil(buf, 256, 0x400000, 0, es, PAPI_TOT_INS, 500),
            PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim, -1);
  long long v = 0;
  // PAPI_stop drains the ring before copying buckets out: the user
  // buffer is complete when it returns.
  ASSERT_EQ(PAPI_stop(es, &v), PAPI_OK);

  unsigned long long histogram_total = 0;
  for (const unsigned int b : buf) histogram_total += b;
  EXPECT_GT(histogram_total, 100u);

  PAPIrepro_sampling_stats_t stats = {};
  ASSERT_EQ(PAPIrepro_sampling_stats(&stats), PAPI_OK);
  EXPECT_EQ(stats.async, 1);
  EXPECT_EQ(stats.dispatched, stats.enqueued);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(static_cast<unsigned long long>(stats.dispatched),
            histogram_total);
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
}

// ---- self-telemetry extension surface ----

TEST_F(CapiErrors, TelemetryKnobMatrix) {
  EXPECT_EQ(PAPIrepro_get_telemetry(nullptr), PAPI_EINVAL);

  double ratio = -1.0;
  EXPECT_EQ(PAPIrepro_overhead_ratio(9999, &ratio), PAPI_ENOEVST);
  EXPECT_EQ(PAPIrepro_overhead_ratio(PAPI_NULL, &ratio), PAPI_ENOEVST);
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  EXPECT_EQ(PAPIrepro_overhead_ratio(es, nullptr), PAPI_EINVAL);
  EXPECT_EQ(PAPIrepro_overhead_ratio(es, &ratio), PAPI_OK);
  EXPECT_EQ(ratio, 0.0);  // never run: no window, no overhead

  struct TraceCase {
    const char* name;
    int enable;
    unsigned long long capacity;
    int expected;
  };
  const TraceCase trace_cases[] = {
      {"capacity above ring max", 1, 1ull << 21, PAPI_EINVAL},
      {"default capacity", 1, 0, PAPI_OK},
      {"explicit capacity", 1, 512, PAPI_OK},
      {"disable", 0, 0, PAPI_OK},
  };
  for (const TraceCase& c : trace_cases) {
    EXPECT_EQ(PAPIrepro_set_trace(c.enable, c.capacity), c.expected)
        << c.name;
  }

  const std::string good =
      ::testing::TempDir() + "papirepro_capi_trace.json";
  struct DumpCase {
    const char* name;
    const char* path;
    int format;
    int expected;
  };
  const DumpCase dump_cases[] = {
      {"null path", nullptr, PAPIREPRO_TRACE_JSON, PAPI_EINVAL},
      {"empty path", "", PAPIREPRO_TRACE_JSON, PAPI_EINVAL},
      {"unknown format", good.c_str(), 7, PAPI_EINVAL},
      {"negative format", good.c_str(), -1, PAPI_EINVAL},
      {"unwritable path", "/nonexistent-dir/papirepro/trace.json",
       PAPIREPRO_TRACE_JSON, PAPI_ESYS},
      {"json ok", good.c_str(), PAPIREPRO_TRACE_JSON, PAPI_OK},
      {"csv ok", good.c_str(), PAPIREPRO_TRACE_CSV, PAPI_OK},
  };
  for (const DumpCase& c : dump_cases) {
    EXPECT_EQ(PAPIrepro_dump_trace(c.path, c.format), c.expected)
        << c.name;
  }
  std::remove(good.c_str());
}

TEST_F(CapiErrors, TelemetrySnapshotAndCompatWrappersAgree) {
  ASSERT_EQ(PAPIrepro_set_trace(1, 0), PAPI_OK);
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim_, -1);
  long long v = 0;
  ASSERT_EQ(PAPI_read(es, &v), PAPI_OK);
  ASSERT_EQ(PAPI_stop(es, &v), PAPI_OK);

  PAPIrepro_telemetry_t t = {};
  ASSERT_EQ(PAPIrepro_get_telemetry(&t), PAPI_OK);
  EXPECT_EQ(t.enabled, 1);
  EXPECT_EQ(t.trace_enabled, 1);
  EXPECT_EQ(t.starts, 1);
  EXPECT_EQ(t.stops, 1);
  EXPECT_GE(t.reads, 1);
  EXPECT_GE(t.threads_seen, 1);
  // start + read + stop all landed in the (default-capacity) ring, and
  // nothing has been drained yet: everything accepted is still buffered.
  EXPECT_GE(t.trace_records, 3);
  EXPECT_EQ(t.trace_drops, 0);
  EXPECT_EQ(t.trace_records_buffered, t.trace_records);

  // The legacy stats entry points are wrappers over the same snapshot:
  // they can never disagree with the unified struct.
  PAPIrepro_alloc_cache_stats_t cache = {};
  ASSERT_EQ(PAPIrepro_alloc_cache_stats(&cache), PAPI_OK);
  EXPECT_EQ(cache.hits, t.alloc_cache_hits);
  EXPECT_EQ(cache.misses, t.alloc_cache_misses);
  EXPECT_EQ(cache.evictions, t.alloc_cache_evictions);
  EXPECT_EQ(cache.invalidations, t.alloc_cache_invalidations);

  PAPIrepro_sampling_stats_t sampling = {};
  ASSERT_EQ(PAPIrepro_sampling_stats(&sampling), PAPI_OK);
  EXPECT_EQ(sampling.enqueued, t.samples_enqueued);
  EXPECT_EQ(sampling.dropped, t.samples_dropped);
  EXPECT_EQ(sampling.dispatched, t.samples_dispatched);

  const std::string path =
      ::testing::TempDir() + "papirepro_capi_dump.json";
  ASSERT_EQ(PAPIrepro_dump_trace(path.c_str(), PAPIREPRO_TRACE_JSON),
            PAPI_OK);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"start\""), std::string::npos);
  EXPECT_NE(json.find("\"stop\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- fault-injection extension surface ----

TEST_F(CapiErrors, FaultPlanArgumentValidation) {
  EXPECT_EQ(PAPIrepro_set_fault_plan(nullptr), PAPI_EINVAL);
  PAPIrepro_fault_plan_t plan = {};
  plan.program_fail_times = -1;
  EXPECT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_EINVAL);
  plan = {};
  plan.fault_code = 3;  // PAPI codes are <= 0
  EXPECT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_EINVAL);
  plan = {};
  plan.counter_width_bits = -8;
  EXPECT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_EINVAL);
  plan = {};
  plan.target_component = -1;
  EXPECT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_EINVAL);
  plan = {};
  plan.target_component = PAPIREPRO_MAX_COMPONENTS + 1;
  EXPECT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_EINVAL);
  // Initialized without a decorator: the plan cannot be installed now.
  plan = {};
  EXPECT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_EISRUN);
  EXPECT_EQ(PAPIrepro_inject_faults(1), PAPI_ENOSUPP);
}

TEST_F(CapiErrors, SetRetryValidatesAttempts) {
  EXPECT_EQ(PAPIrepro_set_retry(0, 0), PAPI_EINVAL);
  EXPECT_EQ(PAPIrepro_set_retry(-2, 0), PAPI_EINVAL);
  EXPECT_EQ(PAPIrepro_set_retry(3, 0), PAPI_OK);
}

TEST(CapiFaultInjection, StagedTransientFaultsRetriedToCorrectCounts) {
  PAPI_shutdown();
  PAPIrepro_sim_t* sim = PAPIrepro_sim_create("sim-x86", "saxpy", 10'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);
  // Stage the plan before init: two transient program() failures plus a
  // context-create hiccup, all absorbed by the default retry budget.
  PAPIrepro_fault_plan_t plan = {};
  plan.seed = 42;
  plan.program_fail_times = 2;
  plan.create_context_fail_times = 1;
  ASSERT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_OK);
  ASSERT_EQ(PAPIrepro_inject_faults(1), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);

  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_FMA_INS), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim, -1);
  long long v = 0;
  ASSERT_EQ(PAPI_stop(es, &v), PAPI_OK);
  EXPECT_EQ(v, 10'000);  // correct counts despite the faults
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
}

TEST(CapiFaultInjection, PermanentFaultSurfacesConfiguredCode) {
  PAPI_shutdown();
  PAPIrepro_sim_t* sim = PAPIrepro_sim_create("sim-x86", "saxpy", 10'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);
  PAPIrepro_fault_plan_t plan = {};
  plan.program_fail_times = 1 << 20;  // effectively permanent
  plan.fault_code = PAPI_ESYS;
  ASSERT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_OK);
  ASSERT_EQ(PAPIrepro_inject_faults(1), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);

  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  // The injected substrate code comes back — not EINVAL, not a retry
  // artifact.
  EXPECT_EQ(PAPI_start(es), PAPI_ESYS);
  // Disabling injection at runtime heals the substrate immediately.
  ASSERT_EQ(PAPIrepro_inject_faults(0), PAPI_OK);
  ASSERT_EQ(PAPI_start(es), PAPI_OK);
  PAPIrepro_sim_run(sim, -1);
  long long v = 0;
  ASSERT_EQ(PAPI_stop(es, &v), PAPI_OK);
  EXPECT_GT(v, 0);
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
}

TEST(CapiFaultInjection, TargetedComponentFaultsLeaveOthersClean) {
  PAPI_shutdown();
  PAPIrepro_sim_t* sim = PAPIrepro_sim_create("sim-x86", "saxpy", 5'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);
  // Target the plan at the mem component only (target_component is
  // 1-based; 0 means wrap everything): a permanent start fault there
  // must not touch the cpu component's substrate.
  PAPIrepro_fault_plan_t plan = {};
  plan.start_fail_times = 1 << 20;
  plan.fault_code = PAPI_ESYS;
  plan.target_component = 2;  // component id 1: "mem"
  ASSERT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_OK);
  ASSERT_EQ(PAPIrepro_inject_faults(1), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);

  int cpu_set = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&cpu_set), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(cpu_set, PAPI_TOT_INS), PAPI_OK);
  ASSERT_EQ(PAPI_start(cpu_set), PAPI_OK);  // cpu is undecorated
  long long v = 0;
  ASSERT_EQ(PAPI_stop(cpu_set, &v), PAPI_OK);

  int mem_set = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&mem_set), PAPI_OK);
  ASSERT_EQ(PAPI_add_named_event(mem_set, "mem::L2_MISSES"), PAPI_OK);
  EXPECT_EQ(PAPI_start(mem_set), PAPI_ESYS);
  // Disabling injection heals the targeted component too.
  ASSERT_EQ(PAPIrepro_inject_faults(0), PAPI_OK);
  ASSERT_EQ(PAPI_start(mem_set), PAPI_OK);
  ASSERT_EQ(PAPI_stop(mem_set, &v), PAPI_OK);
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
}

TEST(CapiFaultInjection, NarrowCounterRunMatchesFullWidth) {
  auto run_width = [](int width) {
    PAPI_shutdown();
    PAPIrepro_sim_t* sim =
        PAPIrepro_sim_create("sim-x86", "saxpy", 20'000);
    EXPECT_NE(sim, nullptr);
    EXPECT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);
    PAPIrepro_fault_plan_t plan = {};
    plan.counter_width_bits = width;
    EXPECT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_OK);
    EXPECT_EQ(PAPIrepro_inject_faults(1), PAPI_OK);
    EXPECT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
    int es = PAPI_NULL;
    EXPECT_EQ(PAPI_create_eventset(&es), PAPI_OK);
    EXPECT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
    EXPECT_EQ(PAPI_start(es), PAPI_OK);
    // Periodic reads keep the folding cadence ahead of the wrap period.
    long long v = 0;
    while (!PAPIrepro_sim_halted(sim)) {
      PAPIrepro_sim_run(sim, 20'000);
      EXPECT_EQ(PAPI_read(es, &v), PAPI_OK);
    }
    long long total = 0;
    EXPECT_EQ(PAPI_stop(es, &total), PAPI_OK);
    PAPI_shutdown();
    PAPIrepro_sim_destroy(sim);
    return total;
  };
  const long long narrow = run_width(17);  // wraps every 131072 counts
  const long long full = run_width(64);
  EXPECT_EQ(narrow, full);
  EXPECT_GT(full, 1 << 17);  // the narrow register really wrapped
}

TEST(CapiFaultInjection, RetryKnobBoundsAttempts) {
  PAPI_shutdown();
  PAPIrepro_sim_t* sim = PAPIrepro_sim_create("sim-x86", "saxpy", 1'000);
  ASSERT_NE(sim, nullptr);
  ASSERT_EQ(PAPIrepro_bind_sim(sim), PAPI_OK);
  PAPIrepro_fault_plan_t plan = {};
  plan.program_fail_times = 1;
  ASSERT_EQ(PAPIrepro_set_fault_plan(&plan), PAPI_OK);
  ASSERT_EQ(PAPIrepro_inject_faults(1), PAPI_OK);
  ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  // With retries disabled the one transient surfaces...
  ASSERT_EQ(PAPIrepro_set_retry(1, 0), PAPI_OK);
  int es = PAPI_NULL;
  ASSERT_EQ(PAPI_create_eventset(&es), PAPI_OK);
  ASSERT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
  EXPECT_EQ(PAPI_start(es), PAPI_ECNFLCT);  // default injected code
  // ...and the next attempt (script exhausted) goes through.
  EXPECT_EQ(PAPI_start(es), PAPI_OK);
  long long v = 0;
  ASSERT_EQ(PAPI_stop(es, &v), PAPI_OK);
  PAPI_shutdown();
  PAPIrepro_sim_destroy(sim);
}

}  // namespace
