// C-binding surface of the aggregation service: collector lifecycle,
// the snapshot_all -> wire_encode -> ingest -> reduce -> read loop end
// to end over a real simulated library, telemetry attribution of
// collector activity, and the argument/error matrix.  Suite names are
// Aggregation* so the CI ThreadSanitizer shard runs them alongside the
// core aggregate tests.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "capi/papi.h"

namespace {

class AggregationCapi : public ::testing::Test {
 protected:
  void SetUp() override {
    PAPI_shutdown();
    sim_ = PAPIrepro_sim_create("sim-x86", "saxpy", 10'000);
    ASSERT_NE(sim_, nullptr);
    ASSERT_EQ(PAPIrepro_bind_sim(sim_), PAPI_OK);
    ASSERT_EQ(PAPI_library_init(PAPI_VER_CURRENT), PAPI_VER_CURRENT);
  }
  void TearDown() override {
    PAPI_shutdown();
    PAPIrepro_sim_destroy(sim_);
  }

  /// One started-then-stopped two-event set; returns its handle.
  int make_stopped_set() {
    int es = PAPI_NULL;
    EXPECT_EQ(PAPI_create_eventset(&es), PAPI_OK);
    EXPECT_EQ(PAPI_add_event(es, PAPI_TOT_INS), PAPI_OK);
    EXPECT_EQ(PAPI_add_event(es, PAPI_TOT_CYC), PAPI_OK);
    long long v[2] = {};
    EXPECT_EQ(PAPI_start(es), PAPI_OK);
    EXPECT_EQ(PAPI_stop(es, v), PAPI_OK);
    return es;
  }

  PAPIrepro_sim_t* sim_ = nullptr;
};

TEST_F(AggregationCapi, SnapshotEncodeIngestReduceReadLoop) {
  const int es = make_stopped_set();
  (void)es;

  PAPIrepro_snapshot_t entries[8];
  long long values[16];
  const int n = PAPIrepro_snapshot_all(entries, 8, values, 16);
  ASSERT_GT(n, 0);

  unsigned char frame[1024];
  const int bytes = PAPIrepro_wire_encode(
      /*rank=*/7, /*frame_cycles=*/1000, entries, n, values, 16, frame,
      sizeof frame);
  ASSERT_GT(bytes, 0);

  PAPIrepro_collector_config_t cfg = {};
  cfg.max_ranks = 16;
  cfg.ranks_per_node = 4;
  cfg.num_metrics = 2;
  const int c = PAPIrepro_collector_create(&cfg);
  ASSERT_GE(c, 0);

  EXPECT_EQ(PAPIrepro_collector_ingest(c, frame, bytes), 1);

  PAPIrepro_cluster_view_t reduced = {};
  ASSERT_EQ(PAPIrepro_collector_reduce(c, 2000, &reduced), PAPI_OK);
  EXPECT_EQ(reduced.ranks_live, 1);
  EXPECT_EQ(reduced.ranks_stale, 0);
  EXPECT_EQ(reduced.num_metrics, 2);
  // One rank: min == max == sum == the rank's value for each metric,
  // and the values must be the snapshot's (entry 0 is the stopped
  // two-event set, its values at first_value).
  for (int m = 0; m < 2; ++m) {
    EXPECT_EQ(reduced.metrics[m].count, 1) << "metric " << m;
    EXPECT_EQ(reduced.metrics[m].min, reduced.metrics[m].max);
    EXPECT_EQ(reduced.metrics[m].sum, reduced.metrics[m].min);
  }
  EXPECT_EQ(reduced.metrics[0].min, values[entries[0].first_value]);

  // The seqlock region serves the same view to a polling reader.
  PAPIrepro_cluster_view_t polled = {};
  ASSERT_EQ(PAPIrepro_collector_read(c, &polled), PAPI_OK);
  EXPECT_EQ(polled.reduce_count, reduced.reduce_count);
  EXPECT_EQ(polled.ranks_live, 1);
  EXPECT_EQ(polled.metrics[0].min, reduced.metrics[0].min);
  EXPECT_EQ(polled.metrics[1].sum, reduced.metrics[1].sum);
  EXPECT_DOUBLE_EQ(polled.metrics[0].avg, reduced.metrics[0].avg);

  // Collector activity lands in the library's self-telemetry.
  PAPIrepro_telemetry_t t = {};
  ASSERT_EQ(PAPIrepro_get_telemetry(&t), PAPI_OK);
  EXPECT_GE(t.collector_frames, 1);
  EXPECT_GE(t.collector_reductions, 1);
  EXPECT_EQ(t.collector_decode_errors, 0);

  EXPECT_EQ(PAPIrepro_collector_destroy(c), PAPI_OK);
}

TEST_F(AggregationCapi, DecodeErrorsCountedAndSurvivable) {
  PAPIrepro_collector_config_t cfg = {};
  cfg.num_metrics = 2;
  const int c = PAPIrepro_collector_create(&cfg);
  ASSERT_GE(c, 0);

  const int es = make_stopped_set();
  (void)es;
  PAPIrepro_snapshot_t entries[4];
  long long values[8];
  const int n = PAPIrepro_snapshot_all(entries, 4, values, 8);
  ASSERT_GT(n, 0);
  unsigned char good[512];
  const int bytes = PAPIrepro_wire_encode(0, 10, entries, n, values, 8,
                                          good, sizeof good);
  ASSERT_GT(bytes, 0);

  // Corrupt-magic frame first, good frame second: the decoder skips the
  // bad frame by its declared length and still accepts the good one.
  unsigned char buf[1024];
  std::memcpy(buf, good, static_cast<std::size_t>(bytes));
  buf[4] ^= 0xFF;  // magic byte
  std::memcpy(buf + bytes, good, static_cast<std::size_t>(bytes));
  EXPECT_EQ(PAPIrepro_collector_ingest(c, buf, 2 * bytes), 1);

  PAPIrepro_telemetry_t t = {};
  ASSERT_EQ(PAPIrepro_get_telemetry(&t), PAPI_OK);
  EXPECT_GE(t.collector_decode_errors, 1);

  EXPECT_EQ(PAPIrepro_collector_destroy(c), PAPI_OK);
}

TEST_F(AggregationCapi, ArgumentAndHandleMatrix) {
  static PAPIrepro_cluster_view_t view;
  static unsigned char buf[64];
  static PAPIrepro_snapshot_t entry;
  static long long value;

  // Unknown handles.
  EXPECT_EQ(PAPIrepro_collector_destroy(123456), PAPI_ENOEVST);
  EXPECT_EQ(PAPIrepro_collector_ingest(123456, buf, 0), PAPI_ENOEVST);
  EXPECT_EQ(PAPIrepro_collector_reduce(123456, 0, &view), PAPI_ENOEVST);
  EXPECT_EQ(PAPIrepro_collector_read(123456, &view), PAPI_ENOEVST);

  const int c = PAPIrepro_collector_create(nullptr);  // defaults
  ASSERT_GE(c, 0);
  struct BadCall {
    const char* name;
    std::function<int()> call;
  };
  const std::vector<BadCall> cases = {
      {"ingest null buf nonzero len",
       [&] { return PAPIrepro_collector_ingest(c, nullptr, 8); }},
      {"ingest negative len",
       [&] { return PAPIrepro_collector_ingest(c, buf, -1); }},
      {"read null out",
       [&] { return PAPIrepro_collector_read(c, nullptr); }},
      {"encode null entries",
       [] {
         return PAPIrepro_wire_encode(0, 0, nullptr, 1, &value, 1, buf,
                                      sizeof buf);
       }},
      {"encode null out",
       [] {
         return PAPIrepro_wire_encode(0, 0, &entry, 1, &value, 1,
                                      nullptr, sizeof buf);
       }},
      {"encode negative entries",
       [] {
         return PAPIrepro_wire_encode(0, 0, &entry, -1, &value, 1, buf,
                                      sizeof buf);
       }},
      {"encode null values with count",
       [] {
         return PAPIrepro_wire_encode(0, 0, &entry, 1, nullptr, 1, buf,
                                      sizeof buf);
       }},
      {"encode capacity too small",
       [] {
         entry = {};
         return PAPIrepro_wire_encode(0, 0, &entry, 1, &value, 1, buf,
                                      4);
       }},
  };
  for (const BadCall& b : cases) {
    EXPECT_EQ(b.call(), PAPI_EINVAL) << b.name;
  }

  // Empty ingest is a no-op, not an error.
  EXPECT_EQ(PAPIrepro_collector_ingest(c, nullptr, 0), 0);
  // Reduce before any ingest publishes an empty view; read serves it.
  EXPECT_EQ(PAPIrepro_collector_reduce(c, 0, nullptr), PAPI_OK);
  EXPECT_EQ(PAPIrepro_collector_read(c, &view), PAPI_OK);
  EXPECT_EQ(view.ranks_live, 0);
  EXPECT_EQ(PAPIrepro_collector_destroy(c), PAPI_OK);
  EXPECT_EQ(PAPIrepro_collector_destroy(c), PAPI_ENOEVST);  // twice
}

/// Collectors are independent of library init by design (a monitoring
/// daemon aggregates while the app's library comes and goes).
TEST(AggregationCapiNoInit, CollectorWorksWithoutLibrary) {
  PAPI_shutdown();
  const int c = PAPIrepro_collector_create(nullptr);
  ASSERT_GE(c, 0);
  PAPIrepro_cluster_view_t view = {};
  EXPECT_EQ(PAPIrepro_collector_reduce(c, 100, &view), PAPI_OK);
  EXPECT_EQ(view.ranks_live, 0);
  EXPECT_EQ(PAPIrepro_collector_read(c, &view), PAPI_OK);
  EXPECT_EQ(PAPIrepro_collector_destroy(c), PAPI_OK);
}

}  // namespace
