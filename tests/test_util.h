// Shared test helpers.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/library.h"
#include "sim/event.h"
#include "sim/kernels.h"
#include "sim/machine.h"
#include "substrate/fault_substrate.h"
#include "substrate/sim_substrate.h"

namespace papirepro::test {

/// Number of global operator-new calls made by this process so far.
/// The counting hook lives in alloc_hook.cpp (the test binary replaces
/// the global allocation functions).
std::uint64_t allocation_count();

/// Snapshot-and-diff over the operator-new counter: wrap the code under
/// test and ask `delta()` how many heap allocations it performed.
class AllocationGuard {
 public:
  AllocationGuard() : start_(allocation_count()) {}
  std::uint64_t delta() const { return allocation_count() - start_; }

 private:
  std::uint64_t start_;
};

/// Machine + substrate + library bundle over a workload: the common
/// setup of every end-to-end test.
struct SimFixture {
  sim::Workload workload;
  std::unique_ptr<sim::Machine> machine;
  papi::SimSubstrate* substrate = nullptr;  // owned by library
  std::unique_ptr<papi::Library> library;

  SimFixture(sim::Workload w, const pmu::PlatformDescription& platform,
             const papi::SimSubstrateOptions& options = {})
      : workload(std::move(w)) {
    machine = std::make_unique<sim::Machine>(workload.program,
                                             platform.machine);
    if (workload.setup) workload.setup(*machine);
    auto sub = std::make_unique<papi::SimSubstrate>(*machine, platform,
                                                    options);
    substrate = sub.get();
    library = std::make_unique<papi::Library>(std::move(sub));
  }

  papi::EventSet& new_set() {
    auto handle = library->create_event_set();
    return *library->event_set(handle.value()).value();
  }
};

/// SimFixture with a FaultInjectingSubstrate decorating the sim
/// substrate: the setup of every hardening test.  `fault` and
/// `substrate` alias the decorator and the decorated sim substrate.
struct FaultFixture {
  sim::Workload workload;
  std::unique_ptr<sim::Machine> machine;
  papi::SimSubstrate* substrate = nullptr;         // owned by fault
  papi::FaultInjectingSubstrate* fault = nullptr;  // owned by library
  std::unique_ptr<papi::Library> library;

  FaultFixture(sim::Workload w, const pmu::PlatformDescription& platform,
               const papi::FaultPlan& plan,
               const papi::SimSubstrateOptions& options = {})
      : workload(std::move(w)) {
    machine = std::make_unique<sim::Machine>(workload.program,
                                             platform.machine);
    if (workload.setup) workload.setup(*machine);
    auto sub = std::make_unique<papi::SimSubstrate>(*machine, platform,
                                                    options);
    substrate = sub.get();
    auto wrapped = std::make_unique<papi::FaultInjectingSubstrate>(
        std::move(sub), plan);
    fault = wrapped.get();
    library = std::make_unique<papi::Library>(std::move(wrapped));
  }

  papi::EventSet& new_set() {
    auto handle = library->create_event_set();
    return *library->event_set(handle.value()).value();
  }
};

/// Counts every architectural signal — an oracle PMU with unlimited
/// counters and zero cost.
class SignalCounter final : public sim::EventListener {
 public:
  explicit SignalCounter(sim::Machine& machine) : machine_(machine) {
    machine_.add_listener(this);
  }
  ~SignalCounter() override { machine_.remove_listener(this); }

  void on_event(sim::SimEvent event, std::uint64_t weight,
                const sim::EventContext&) override {
    counts_[static_cast<std::size_t>(event)] += weight;
  }

  std::uint64_t operator[](sim::SimEvent e) const {
    return counts_[static_cast<std::size_t>(e)];
  }

 private:
  sim::Machine& machine_;
  std::array<std::uint64_t, sim::kNumSimEvents> counts_{};
};

}  // namespace papirepro::test
