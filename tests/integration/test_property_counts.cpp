// Property sweep: for every (kernel, platform) pair, the deterministic
// preset counts measured through the full PAPI stack equal the kernel's
// analytic expectations — the "micro-benchmarks for which the expected
// counts are known" methodology, parameterized.
#include <gtest/gtest.h>

#include "core/eventset.h"
#include "sim/workload_registry.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

struct CountCase {
  const char* kernel;
  std::int64_t n;
  const char* platform;
};

void PrintTo(const CountCase& c, std::ostream* os) {
  *os << c.kernel << "/" << c.n << "@" << c.platform;
}

class ExactCounts : public ::testing::TestWithParam<CountCase> {};

TEST_P(ExactCounts, MeasuredEqualsExpected) {
  const CountCase& param = GetParam();
  const auto* platform = pmu::find_platform(param.platform);
  ASSERT_NE(platform, nullptr);
  auto workload = sim::make_workload(param.kernel, param.n);
  ASSERT_TRUE(workload.has_value());

  struct Check {
    Preset preset;
    std::optional<std::uint64_t> expected;
  };
  const std::vector<Check> checks = {
      {Preset::kFpOps, workload->expected.flops},
      {Preset::kFmaIns, workload->expected.fp_fma},
      {Preset::kLdIns, workload->expected.loads},
      {Preset::kSrIns, workload->expected.stores},
      {Preset::kBrIns, workload->expected.branches},
  };

  for (const Check& check : checks) {
    if (!check.expected.has_value()) continue;
    SimFixture f(*workload, *platform, {.charge_costs = false});
    EventSet& set = f.new_set();
    if (!set.add_preset(check.preset).ok()) continue;  // not mapped here
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    long long v = 0;
    ASSERT_TRUE(set.stop({&v, 1}).ok());
    EXPECT_EQ(static_cast<std::uint64_t>(v), *check.expected)
        << preset_name(check.preset) << " on " << param.platform;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsTimesPlatforms, ExactCounts,
    ::testing::Values(
        CountCase{"saxpy", 2'000, "sim-x86"},
        CountCase{"saxpy", 2'000, "sim-power3"},
        CountCase{"saxpy", 2'000, "sim-ia64"},
        CountCase{"stream", 3'000, "sim-x86"},
        CountCase{"stream", 3'000, "sim-power3"},
        CountCase{"stream", 3'000, "sim-ia64"},
        CountCase{"matmul", 12, "sim-x86"},
        CountCase{"matmul", 12, "sim-power3"},
        CountCase{"matmul", 12, "sim-ia64"},
        CountCase{"matmul_blocked", 16, "sim-x86"},
        CountCase{"fcvt_mixed", 2'000, "sim-x86"},
        CountCase{"fcvt_mixed", 2'000, "sim-power3"},
        CountCase{"branchy", 4'000, "sim-x86"},
        CountCase{"branchy", 4'000, "sim-ia64"},
        CountCase{"pointer_chase", 5'000, "sim-x86"},
        CountCase{"tight_call", 1'000, "sim-power3"},
        CountCase{"multiphase", 2, "sim-x86"},
        CountCase{"empty_loop", 10'000, "sim-ia64"},
        CountCase{"stencil2d", 24, "sim-x86"},
        CountCase{"stencil2d", 24, "sim-power3"},
        CountCase{"stencil2d", 24, "sim-t3e"},
        CountCase{"reduction", 5'000, "sim-ia64"},
        CountCase{"reduction", 5'000, "sim-t3e"},
        CountCase{"random_access", 3'000, "sim-x86"},
        CountCase{"random_access", 3'000, "sim-power3"}));

// The same sweep through the *multiplexed* path on a long run: estimates
// must land within 8%.
class MuxCounts : public ::testing::TestWithParam<const char*> {};

TEST_P(MuxCounts, EstimatesNearTruthOnLongRuns) {
  const auto* platform = pmu::find_platform(GetParam());
  ASSERT_NE(platform, nullptr);
  const std::int64_t n = 300'000;
  auto workload = sim::make_workload("saxpy", n);
  SimFixture f(*workload, *platform, {.charge_costs = false});
  EventSet& set = f.new_set();
  ASSERT_TRUE(set.enable_multiplex(20'000).ok());
  int idx_fma = -1, added = 0;
  for (Preset p : {Preset::kFmaIns, Preset::kLdIns, Preset::kSrIns,
                   Preset::kTotIns, Preset::kTotCyc, Preset::kL1Dca,
                   Preset::kBrIns}) {
    if (set.add_preset(p).ok()) {
      if (p == Preset::kFmaIns) idx_fma = added;
      ++added;
    }
  }
  ASSERT_GE(added, 4);
  ASSERT_GE(idx_fma, 0);
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  std::vector<long long> v(added);
  ASSERT_TRUE(set.stop(v).ok());
  EXPECT_NEAR(static_cast<double>(v[idx_fma]), static_cast<double>(n),
              0.08 * static_cast<double>(n))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Platforms, MuxCounts,
                         ::testing::Values("sim-x86", "sim-power3",
                                           "sim-ia64"));

}  // namespace
}  // namespace papirepro::papi
