// E1 (Fig. 1): the same portable code measures the same workload on
// every substrate — the whole point of PAPI.  Deterministic event
// classes (FP operations, loads, stores) must agree *exactly* across
// platforms, because they depend only on the instruction stream, while
// microarchitectural events (cache misses, mispredictions) may differ.
#include <gtest/gtest.h>

#include "core/highlevel.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SimFixture;

struct PlatformCase {
  const pmu::PlatformDescription* platform;
  bool needs_estimation;
};

std::vector<PlatformCase> counting_platforms() {
  return {{&pmu::sim_x86(), false},
          {&pmu::sim_power3(), false},
          {&pmu::sim_ia64(), false},
          {&pmu::sim_alpha(), true}};
}

long long measure_fp_ops(const PlatformCase& pc, std::int64_t n) {
  SimFixture f(sim::make_saxpy(n), *pc.platform, {.charge_costs = false});
  if (pc.needs_estimation) {
    EXPECT_TRUE(f.substrate->set_estimation(true).ok());
  }
  EventSet& set = f.new_set();
  EXPECT_TRUE(set.add_preset(Preset::kFpOps).ok());
  EXPECT_TRUE(set.start().ok());
  f.machine->run();
  long long v = 0;
  EXPECT_TRUE(set.stop({&v, 1}).ok());
  return v;
}

TEST(Portability, FpOpsAgreesAcrossAllSubstrates) {
  const std::int64_t n = 150'000;
  for (const PlatformCase& pc : counting_platforms()) {
    const long long v = measure_fp_ops(pc, n);
    if (pc.needs_estimation) {
      // Sampled estimate: within a few percent.
      EXPECT_NEAR(static_cast<double>(v), 2.0 * n, 0.10 * 2 * n)
          << pc.platform->name;
    } else {
      EXPECT_EQ(v, 2 * n) << pc.platform->name;
    }
  }
}

TEST(Portability, SameApiSameEventListEveryPlatform) {
  // One loop of portable code, four platforms (the papirun E1 shape).
  for (const PlatformCase& pc : counting_platforms()) {
    if (pc.needs_estimation) continue;  // alpha's aggregate set is thin
    SimFixture f(sim::make_stream_triad(20'000), *pc.platform,
                 {.charge_costs = false});
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok()) << pc.platform->name;
    ASSERT_TRUE(set.add_preset(Preset::kLdIns).ok()) << pc.platform->name;
    ASSERT_TRUE(set.add_preset(Preset::kSrIns).ok()) << pc.platform->name;
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    std::vector<long long> v(3);
    ASSERT_TRUE(set.stop(v).ok());
    EXPECT_EQ(v[1], 40'000) << pc.platform->name;
    EXPECT_EQ(v[2], 20'000) << pc.platform->name;
  }
}

TEST(Portability, TimersWorkTheSameEverywhere) {
  for (const PlatformCase& pc : counting_platforms()) {
    SimFixture f(sim::make_empty_loop(100'000), *pc.platform);
    const auto t0 = f.library->real_usec();
    const auto c0 = f.library->real_cycles();
    f.machine->run();
    EXPECT_GT(f.library->real_usec(), t0) << pc.platform->name;
    EXPECT_GT(f.library->real_cycles(), c0) << pc.platform->name;
  }
}

TEST(Portability, FlopsCallPortableAcrossPlatforms) {
  // PAPI_flops returns normalized FLOPs on every substrate that maps
  // PAPI_FP_OPS, despite different native FP counting quirks.
  const std::int64_t n = 60'000;
  for (const pmu::PlatformDescription* p :
       {&pmu::sim_x86(), &pmu::sim_power3(), &pmu::sim_ia64()}) {
    SimFixture f(sim::make_saxpy(n), *p, {.charge_costs = false});
    HighLevel hl(*f.library);
    ASSERT_TRUE(hl.flops().ok()) << p->name;
    f.machine->run();
    EXPECT_EQ(hl.flops().value().flops, 2 * n) << p->name;
  }
}

TEST(Portability, MicroarchEventsDifferButAreSane) {
  // Cache misses vary across platforms (different skid/latency configs
  // share cache geometry here, so expect equality of accesses but allow
  // any positive misses).
  for (const PlatformCase& pc : counting_platforms()) {
    if (pc.needs_estimation) continue;
    SimFixture f(sim::make_pointer_chase(2048, 40'000, 9), *pc.platform,
                 {.charge_costs = false});
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_preset(Preset::kL1Dcm).ok()) << pc.platform->name;
    ASSERT_TRUE(set.start().ok());
    f.machine->run();
    long long misses = 0;
    ASSERT_TRUE(set.stop({&misses, 1}).ok());
    EXPECT_GT(misses, 10'000) << pc.platform->name;
    EXPECT_LE(misses, 40'000 + 100) << pc.platform->name;
  }
}

}  // namespace
}  // namespace papirepro::papi
