// Randomized structured-program fuzzing: generate well-formed programs
// (straight-line arithmetic/memory blocks inside bounded counted loops),
// run them on every platform, and check cross-layer invariants:
//   - the program halts within budget,
//   - cycles >= retired instructions (every instruction costs >= 1),
//   - the PMU agrees exactly with an oracle listener for every countable
//     native event,
//   - runs are bit-deterministic.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/eventset.h"
#include "test_util.h"

namespace papirepro::papi {
namespace {

using papirepro::test::SignalCounter;
using papirepro::test::SimFixture;

/// Emits a random but structurally valid program.
sim::Program random_program(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  sim::ProgramBuilder b;
  b.begin_function("main");
  // Seed registers with safe values.
  for (int r = 8; r < 16; ++r) {
    b.li(r, static_cast<std::int64_t>(rng.next_below(1'000)) + 1);
  }
  for (int f = 1; f < 8; ++f) {
    b.fli(f, 1.0 + static_cast<double>(rng.next_below(16)) / 4.0);
  }
  b.li(20, 0x100000);  // memory base

  const int blocks = 2 + static_cast<int>(rng.next_below(4));
  for (int block = 0; block < blocks; ++block) {
    // Bounded counted loop around a random body.
    const auto trips =
        static_cast<std::int64_t>(rng.next_below(60)) + 1;
    b.li(1, 0);
    b.li(2, trips);
    auto loop = b.new_label();
    b.bind(loop);
    const int body = 1 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < body; ++i) {
      const int rd = 8 + static_cast<int>(rng.next_below(8));
      const int rs = 8 + static_cast<int>(rng.next_below(8));
      const int fd = 1 + static_cast<int>(rng.next_below(7));
      const int fs = 1 + static_cast<int>(rng.next_below(7));
      const auto offset =
          static_cast<std::int64_t>(rng.next_below(512)) * 8;
      switch (rng.next_below(10)) {
        case 0: b.add(rd, rd, rs); break;
        case 1: b.mul(rd, rd, rs); break;
        case 2: b.xor_(rd, rd, rs); break;
        case 3: b.fadd(fd, fd, fs); break;
        case 4: b.fmul(fd, fd, fs); break;
        case 5: b.fmadd(fd, fd, fs); break;
        case 6: b.fcvt_ds(fd, fs); break;
        case 7: b.load(rd, 20, offset); break;
        case 8: b.store(rs, 20, offset); break;
        case 9: b.fload(fd, 20, offset); break;
      }
    }
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
  }
  b.halt();
  b.end_function();
  return std::move(b).build();
}

class RandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrograms, InvariantsHoldOnEveryPlatform) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 1299709 + 7;
  const sim::Program program = random_program(seed);

  for (const pmu::PlatformDescription* platform : pmu::all_platforms()) {
    sim::Workload w;
    w.name = "fuzz";
    w.program = program;
    SimFixture f(std::move(w), *platform, {.charge_costs = false});

    SignalCounter oracle(*f.machine);
    // Count instructions through the real PMU path alongside.
    EventSet& set = f.new_set();
    ASSERT_TRUE(set.add_preset(Preset::kTotIns).ok()) << platform->name;
    ASSERT_TRUE(set.start().ok());
    const sim::RunResult run = f.machine->run(5'000'000);
    ASSERT_TRUE(run.halted) << platform->name << " seed " << seed;
    long long measured = 0;
    ASSERT_TRUE(set.stop({&measured, 1}).ok());

    EXPECT_EQ(static_cast<std::uint64_t>(measured),
              oracle[sim::SimEvent::kInstructions])
        << platform->name;
    EXPECT_GE(f.machine->cycles(), f.machine->retired())
        << platform->name;
    EXPECT_EQ(oracle[sim::SimEvent::kCycles], f.machine->cycles())
        << platform->name;
    // Memory event sanity: misses never exceed accesses.
    EXPECT_LE(oracle[sim::SimEvent::kL1DMiss],
              oracle[sim::SimEvent::kL1DAccess]);
    EXPECT_LE(oracle[sim::SimEvent::kBrMispred],
              oracle[sim::SimEvent::kBrIns]);
  }
}

TEST_P(RandomPrograms, Deterministic) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 3;
  const sim::Program program = random_program(seed);
  auto run_once = [&] {
    sim::Machine m(program, pmu::sim_x86().machine);
    m.run(5'000'000);
    return std::pair(m.cycles(), m.retired());
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0, 12));

}  // namespace
}  // namespace papirepro::papi
