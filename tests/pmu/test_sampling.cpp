#include "pmu/sampling.h"

#include <gtest/gtest.h>

#include "sim/kernels.h"

namespace papirepro::pmu {
namespace {

using sim::SimEvent;

TEST(ProfileMe, EstimateConvergesOnLongRun) {
  const std::int64_t n = 200'000;
  sim::Workload w = sim::make_saxpy(n);
  sim::Machine m(w.program, {});
  w.setup(m);
  const SimEvent tracked[] = {SimEvent::kFpFma, SimEvent::kLoadIns};
  ProfileMeEngine engine(m, tracked, /*period_mean=*/512, /*seed=*/99,
                         /*sample_cost_cycles=*/0);
  engine.start();
  m.run();
  engine.stop();

  EXPECT_GT(engine.samples_taken(), 1000u);
  const double est_fma = engine.estimate(0);
  const double est_ld = engine.estimate(1);
  EXPECT_NEAR(est_fma, static_cast<double>(n),
              0.05 * static_cast<double>(n));
  EXPECT_NEAR(est_ld, static_cast<double>(2 * n),
              0.05 * static_cast<double>(2 * n));
}

TEST(ProfileMe, ShortRunEstimateIsNoisyOrEmpty) {
  sim::Workload w = sim::make_saxpy(100);
  sim::Machine m(w.program, {});
  w.setup(m);
  const SimEvent tracked[] = {SimEvent::kFpFma};
  ProfileMeEngine engine(m, tracked, 512, 99, 0);
  engine.start();
  m.run();
  engine.stop();
  // ~800 instructions, period 512: one-ish sample; the estimate cannot
  // be trusted (this is exactly the convergence caveat).
  EXPECT_LE(engine.samples_taken(), 5u);
}

TEST(ProfileMe, SamplesCarryPreciseAddresses) {
  sim::Workload w = sim::make_pointer_chase(256, 30'000, 5);
  sim::Machine m(w.program, {});
  w.setup(m);
  const SimEvent tracked[] = {SimEvent::kL1DMiss};
  ProfileMeEngine engine(m, tracked, 128, 7, 0);
  engine.start();
  m.run();
  engine.stop();

  ASSERT_GT(engine.samples_taken(), 50u);
  const std::uint64_t load_pc = sim::instr_address(3);
  std::uint64_t with_miss = 0, miss_at_load = 0;
  for (const auto& s : engine.samples()) {
    if (s.weights[0] > 0) {
      ++with_miss;
      if (s.pc == load_pc) ++miss_at_load;
      EXPECT_TRUE(s.has_addr);
    }
  }
  ASSERT_GT(with_miss, 0u);
  // ProfileMe records the exact instruction: every miss sample points at
  // the load.
  EXPECT_EQ(miss_at_load, with_miss);
}

TEST(ProfileMe, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Workload w = sim::make_saxpy(50'000);
    sim::Machine m(w.program, {});
    w.setup(m);
    const SimEvent tracked[] = {SimEvent::kFpFma};
    ProfileMeEngine engine(m, tracked, 256, 42, 0);
    engine.start();
    m.run();
    engine.stop();
    return std::pair(engine.samples_taken(), engine.sampled_weight(0));
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ProfileMe, SampleCostChargesMachine) {
  sim::Workload w = sim::make_saxpy(50'000);
  sim::Machine m(w.program, {});
  w.setup(m);
  const SimEvent tracked[] = {SimEvent::kFpFma};
  ProfileMeEngine engine(m, tracked, 512, 42, /*sample_cost_cycles=*/12);
  engine.start();
  m.run();
  engine.stop();
  EXPECT_EQ(m.overhead_cycles(), engine.samples_taken() * 12);
  // The DADD claim: sampling overhead is one-to-two percent.
  const double frac = static_cast<double>(m.overhead_cycles()) /
                      static_cast<double>(m.cycles());
  EXPECT_LT(frac, 0.03);
  EXPECT_GT(frac, 0.001);
}

TEST(ProfileMe, ResetClearsState) {
  sim::Workload w = sim::make_saxpy(10'000);
  sim::Machine m(w.program, {});
  w.setup(m);
  const SimEvent tracked[] = {SimEvent::kFpFma};
  ProfileMeEngine engine(m, tracked, 256, 1, 0);
  engine.start();
  m.run(20'000);
  engine.stop();
  EXPECT_GT(engine.samples_taken(), 0u);
  engine.reset();
  EXPECT_EQ(engine.samples_taken(), 0u);
  EXPECT_EQ(engine.sampled_weight(0), 0u);
  EXPECT_EQ(engine.estimate(0), 0.0);
}

}  // namespace
}  // namespace papirepro::pmu
