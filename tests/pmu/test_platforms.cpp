#include "pmu/platform.h"

#include <gtest/gtest.h>

#include <set>

namespace papirepro::pmu {
namespace {

TEST(Platforms, RegistryHasAllFive) {
  EXPECT_EQ(all_platforms().size(), 5u);
  EXPECT_NE(find_platform("sim-x86"), nullptr);
  EXPECT_NE(find_platform("sim-power3"), nullptr);
  EXPECT_NE(find_platform("sim-ia64"), nullptr);
  EXPECT_NE(find_platform("sim-alpha"), nullptr);
  EXPECT_NE(find_platform("sim-t3e"), nullptr);
  EXPECT_EQ(find_platform("sim-vax"), nullptr);
}

TEST(Platforms, T3eIsTheRegisterLevelExtreme) {
  const PlatformDescription& p = sim_t3e();
  EXPECT_EQ(p.num_counters, 3u);
  // Register-level access: orders of magnitude cheaper than the
  // syscall-based substrates.
  EXPECT_LT(p.costs.read_cost_cycles, 50u);
  EXPECT_EQ(p.costs.read_pollute_lines, 0u);
  EXPECT_GT(sim_x86().costs.read_cost_cycles,
            100 * p.costs.read_cost_cycles);
  // In-order core: precise interrupt attribution.
  EXPECT_EQ(p.skid.kind, sim::SkidModel::Kind::kPrecise);
  EXPECT_FALSE(p.sampling.has_ear);
  EXPECT_FALSE(p.sampling.has_profileme);
}

TEST(Platforms, EventCodesUniqueWithinPlatform) {
  for (const PlatformDescription* p : all_platforms()) {
    std::set<NativeEventCode> codes;
    std::set<std::string> names;
    for (const NativeEvent& e : p->events) {
      EXPECT_TRUE(codes.insert(e.code).second)
          << p->name << " duplicate code " << e.code;
      EXPECT_TRUE(names.insert(e.name).second)
          << p->name << " duplicate name " << e.name;
      EXPECT_FALSE(e.terms.empty()) << e.name << " has no signal terms";
    }
  }
}

TEST(Platforms, LookupByCodeAndName) {
  const PlatformDescription& p = sim_x86();
  const NativeEvent* by_name = p.find_event("INST_RETIRED");
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(p.find_event(by_name->code), by_name);
  EXPECT_EQ(p.find_event("NO_SUCH_EVENT"), nullptr);
  EXPECT_EQ(p.find_event(NativeEventCode{0xdeadbeef}), nullptr);
}

TEST(Platforms, X86MasksWithinCounterRange) {
  const PlatformDescription& p = sim_x86();
  const std::uint32_t all = (1u << p.num_counters) - 1;
  for (const NativeEvent& e : p.events) {
    EXPECT_NE(e.counter_mask & all, 0u) << e.name;
    EXPECT_EQ(e.counter_mask & ~all, 0u) << e.name << " mask out of range";
  }
}

TEST(Platforms, Power3IsGroupConstrained) {
  const PlatformDescription& p = sim_power3();
  EXPECT_TRUE(p.group_constrained());
  EXPECT_EQ(p.num_counters, 8u);
  for (const CounterGroup& g : p.groups) {
    EXPECT_EQ(g.slots.size(), p.num_counters) << g.name;
    for (NativeEventCode code : g.slots) {
      if (code != kNoNativeEvent) {
        EXPECT_NE(p.find_event(code), nullptr)
            << g.name << " references unknown event";
      }
    }
  }
}

TEST(Platforms, Power3FpuInsIncludesConverts) {
  // The Section 4 discrepancy must be modeled: PM_FPU_INS counts kFpCvt.
  const NativeEvent* e = sim_power3().find_event("PM_FPU_INS");
  ASSERT_NE(e, nullptr);
  bool has_cvt = false;
  for (const SignalTerm& t : e->terms) {
    if (t.signal == sim::SimEvent::kFpCvt) has_cvt = true;
  }
  EXPECT_TRUE(has_cvt);
}

TEST(Platforms, Ia64HasEars) {
  EXPECT_TRUE(sim_ia64().sampling.has_ear);
  EXPECT_FALSE(sim_ia64().sampling.has_profileme);
}

TEST(Platforms, AlphaHasProfileMeAndFewCounters) {
  const PlatformDescription& p = sim_alpha();
  EXPECT_TRUE(p.sampling.has_profileme);
  EXPECT_EQ(p.num_counters, 2u);
  // The aggregate interface has only "a handful of events"; the PME_*
  // extension events are sampled-only (mask 0).
  int aggregate = 0, sampled = 0;
  for (const NativeEvent& e : p.events) {
    (e.counter_mask == 0 ? sampled : aggregate)++;
  }
  EXPECT_LE(aggregate, 5);
  EXPECT_GE(sampled, 6);
}

TEST(Platforms, SkidModelsDiffer) {
  EXPECT_EQ(sim_x86().skid.kind, sim::SkidModel::Kind::kGeometric);
  EXPECT_EQ(sim_power3().skid.kind, sim::SkidModel::Kind::kFixed);
  EXPECT_EQ(sim_ia64().skid.kind, sim::SkidModel::Kind::kFixed);
  EXPECT_EQ(sim_alpha().skid.kind, sim::SkidModel::Kind::kGeometric);
}

}  // namespace
}  // namespace papirepro::pmu
