#include "pmu/pmu.h"

#include <gtest/gtest.h>

#include "sim/kernels.h"

namespace papirepro::pmu {
namespace {

NativeEventCode code_of(const PlatformDescription& p, std::string_view n) {
  const NativeEvent* e = p.find_event(n);
  EXPECT_NE(e, nullptr) << n;
  return e->code;
}

TEST(Pmu, ProgramValidatesCounterMasks) {
  const auto& p = sim_x86();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);

  const NativeEventCode l2 = code_of(p, "L2_MISS");  // counter 0 only
  // Valid placement.
  std::uint32_t ok_counter[] = {0};
  EXPECT_TRUE(pmu.program({{l2}}, ok_counter).ok());
  // Invalid placement.
  std::uint32_t bad_counter[] = {2};
  EXPECT_EQ(pmu.program({{l2}}, bad_counter).error(), Error::kConflict);
}

TEST(Pmu, ProgramRejectsDuplicateCountersAndBadEvents) {
  const auto& p = sim_x86();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);

  const NativeEventCode cyc = code_of(p, "CPU_CLK_UNHALTED");
  const NativeEventCode ins = code_of(p, "INST_RETIRED");
  const NativeEventCode events[] = {cyc, ins};
  std::uint32_t dup[] = {1, 1};
  EXPECT_EQ(pmu.program(events, dup).error(), Error::kConflict);

  const NativeEventCode bogus[] = {0xdeadbeef};
  std::uint32_t c0[] = {0};
  EXPECT_EQ(pmu.program(bogus, c0).error(), Error::kNoEvent);

  std::uint32_t out_of_range[] = {9};
  const NativeEventCode one[] = {cyc};
  EXPECT_EQ(pmu.program(one, out_of_range).error(), Error::kInvalid);
}

TEST(Pmu, GroupPlatformValidatesAgainstGroups) {
  const auto& p = sim_power3();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);

  // Group 0 "basic": PM_CYC on counter 0, PM_INST_CMPL on counter 1.
  const NativeEventCode events[] = {code_of(p, "PM_CYC"),
                                    code_of(p, "PM_INST_CMPL")};
  std::uint32_t good[] = {0, 1};
  EXPECT_TRUE(pmu.program(events, good).ok());
  std::uint32_t bad[] = {1, 0};  // swapped: no group matches
  EXPECT_EQ(pmu.program(events, bad).error(), Error::kConflict);
}

TEST(Pmu, CountsMatchOracle) {
  const auto& p = sim_x86();
  sim::Workload w = sim::make_saxpy(500);
  sim::Machine m(w.program, p.machine);
  w.setup(m);
  PmuModel pmu(p, m);

  const NativeEventCode events[] = {code_of(p, "INST_RETIRED"),
                                    code_of(p, "FP_FMA_RETIRED")};
  std::uint32_t counters[] = {0, 2};
  ASSERT_TRUE(pmu.program(events, counters).ok());
  ASSERT_TRUE(pmu.start().ok());
  m.run();
  ASSERT_TRUE(pmu.stop().ok());

  EXPECT_EQ(pmu.read(0).value(), m.retired());
  EXPECT_EQ(pmu.read(2).value(), 500u);
  EXPECT_EQ(pmu.read(1).value(), 0u);  // unprogrammed counter stays 0
}

TEST(Pmu, NotCountingWhileStopped) {
  const auto& p = sim_x86();
  sim::Workload w = sim::make_empty_loop(100);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);
  const NativeEventCode events[] = {code_of(p, "INST_RETIRED")};
  std::uint32_t counters[] = {0};
  ASSERT_TRUE(pmu.program(events, counters).ok());
  m.run(50);  // not started yet
  EXPECT_EQ(pmu.read(0).value(), 0u);
  ASSERT_TRUE(pmu.start().ok());
  m.run(10);
  ASSERT_TRUE(pmu.stop().ok());
  EXPECT_EQ(pmu.read(0).value(), 10u);
  m.run();  // stopped again: no further counting
  EXPECT_EQ(pmu.read(0).value(), 10u);
}

TEST(Pmu, StartStopStateMachine) {
  const auto& p = sim_x86();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);
  EXPECT_EQ(pmu.stop().error(), Error::kNotRunning);
  ASSERT_TRUE(pmu.start().ok());
  EXPECT_EQ(pmu.start().error(), Error::kIsRunning);
  ASSERT_TRUE(pmu.stop().ok());
}

TEST(Pmu, DerivedWeightsMultiplyCounts) {
  // An event whose term has multiplier > 1 is honored (none of the
  // built-in platforms use one today, so build a synthetic platform).
  PlatformDescription p = sim_x86();
  p.events.push_back({0x999, "DOUBLE_FMA", "FMA counted twice",
                      {{sim::SimEvent::kFpFma, 2}}, 0xF});
  sim::Workload w = sim::make_saxpy(100);
  sim::Machine m(w.program, p.machine);
  w.setup(m);
  PmuModel pmu(p, m);
  const NativeEventCode events[] = {0x999};
  std::uint32_t counters[] = {0};
  ASSERT_TRUE(pmu.program(events, counters).ok());
  ASSERT_TRUE(pmu.start().ok());
  m.run();
  EXPECT_EQ(pmu.read(0).value(), 200u);
}

TEST(Pmu, OverflowFiresPerThreshold) {
  const auto& p = sim_power3();  // fixed skid 2: deterministic
  sim::Workload w = sim::make_empty_loop(1000);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);
  const NativeEventCode events[] = {code_of(p, "PM_INST_CMPL")};
  std::uint32_t counters[] = {1};  // PM_INST_CMPL sits in slot 1 of groups
  ASSERT_TRUE(pmu.program(events, counters).ok());
  int fires = 0;
  ASSERT_TRUE(
      pmu.set_overflow(1, 100, [&](const OverflowInfo&) { ++fires; }).ok());
  ASSERT_TRUE(pmu.start().ok());
  m.run();
  // ~2002 instructions retire; threshold 100 -> ~20 interrupts.
  EXPECT_GE(fires, 18);
  EXPECT_LE(fires, 21);
}

TEST(Pmu, OverflowSkidOffsetsDeliveredPc) {
  const auto& p = sim_power3();  // fixed skid of 2 instructions
  sim::Workload w = sim::make_empty_loop(500);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);
  const NativeEventCode events[] = {code_of(p, "PM_INST_CMPL")};
  std::uint32_t counters[] = {1};
  ASSERT_TRUE(pmu.program(events, counters).ok());
  std::vector<OverflowInfo> infos;
  ASSERT_TRUE(pmu.set_overflow(1, 50, [&](const OverflowInfo& i) {
                    infos.push_back(i);
                  }).ok());
  ASSERT_TRUE(pmu.start().ok());
  m.run();
  ASSERT_FALSE(infos.empty());
  for (const OverflowInfo& i : infos) {
    EXPECT_FALSE(i.has_precise);  // power3 has no EAR
    EXPECT_NE(i.pc_skidded, 0u);
  }
}

TEST(Pmu, EarCapturesPreciseAddressOnIa64) {
  const auto& p = sim_ia64();
  sim::Workload w = sim::make_pointer_chase(512, 5000, 77);
  sim::Machine m(w.program, p.machine);
  w.setup(m);
  PmuModel pmu(p, m);
  const NativeEventCode events[] = {code_of(p, "L1D_READ_MISSES")};
  std::uint32_t counters[] = {0};
  ASSERT_TRUE(pmu.program(events, counters).ok());

  // The only load in the chase loop is instruction index 3 (after the
  // three li's).
  const std::uint64_t load_pc = sim::instr_address(3);
  int precise_hits = 0, total = 0;
  ASSERT_TRUE(pmu.set_overflow(0, 50, [&](const OverflowInfo& i) {
                    ++total;
                    EXPECT_TRUE(i.has_precise);
                    if (i.pc_precise == load_pc) ++precise_hits;
                  }).ok());
  ASSERT_TRUE(pmu.start().ok());
  m.run();
  ASSERT_GT(total, 10);
  // EAR attribution: every sample lands on the causing load.
  EXPECT_EQ(precise_hits, total);
}

TEST(Pmu, LargeWeightCoalescesOverflow) {
  const auto& p = sim_power3();
  sim::Workload w = sim::make_empty_loop(10);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);
  const NativeEventCode events[] = {code_of(p, "PM_CYC")};
  std::uint32_t counters[] = {0};
  ASSERT_TRUE(pmu.program(events, counters).ok());
  int fires = 0;
  ASSERT_TRUE(
      pmu.set_overflow(0, 3, [&](const OverflowInfo&) { ++fires; }).ok());
  ASSERT_TRUE(pmu.start().ok());
  // One charge of 30 cycles crosses the threshold 10x but coalesces into
  // one interrupt.
  m.charge_cycles(30);
  m.run();
  EXPECT_GE(fires, 1);
  const auto cyc = pmu.read(0).value();
  EXPECT_GE(cyc, 30u);
}

TEST(Pmu, ResetCountsRearmsOverflow) {
  const auto& p = sim_power3();
  sim::Workload w = sim::make_empty_loop(200);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);
  const NativeEventCode events[] = {code_of(p, "PM_INST_CMPL")};
  std::uint32_t counters[] = {1};
  ASSERT_TRUE(pmu.program(events, counters).ok());
  int fires = 0;
  ASSERT_TRUE(
      pmu.set_overflow(1, 100, [&](const OverflowInfo&) { ++fires; }).ok());
  ASSERT_TRUE(pmu.start().ok());
  m.run(150);
  EXPECT_EQ(fires, 1);
  pmu.reset_counts();
  EXPECT_EQ(pmu.read(1).value(), 0u);
  m.run();  // ~252 more instructions
  EXPECT_GE(fires, 2);
}

TEST(Pmu, ClearOverflowStopsInterrupts) {
  const auto& p = sim_power3();
  sim::Workload w = sim::make_empty_loop(400);
  sim::Machine m(w.program, p.machine);
  PmuModel pmu(p, m);
  const NativeEventCode events[] = {code_of(p, "PM_INST_CMPL")};
  std::uint32_t counters[] = {1};
  ASSERT_TRUE(pmu.program(events, counters).ok());
  int fires = 0;
  ASSERT_TRUE(
      pmu.set_overflow(1, 50, [&](const OverflowInfo&) { ++fires; }).ok());
  ASSERT_TRUE(pmu.start().ok());
  m.run(120);
  const int before = fires;
  EXPECT_GT(before, 0);
  ASSERT_TRUE(pmu.clear_overflow(1).ok());
  m.run();
  EXPECT_EQ(fires, before);
}

}  // namespace
}  // namespace papirepro::pmu
