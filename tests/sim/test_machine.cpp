#include "sim/machine.h"

#include <gtest/gtest.h>

#include "sim/program.h"
#include "test_util.h"

namespace papirepro::sim {
namespace {

using papirepro::test::SignalCounter;

Program arithmetic_program() {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 6);
  b.li(2, 7);
  b.mul(3, 1, 2);      // r3 = 42
  b.addi(4, 3, -2);    // r4 = 40
  b.divi(5, 4, 8);     // r5 = 5
  b.sub(6, 5, 1);      // r6 = -1
  b.fli(1, 1.5);
  b.fli(2, 2.0);
  b.fmul(3, 1, 2);     // f3 = 3.0
  b.fmadd(3, 1, 2);    // f3 = 6.0
  b.fdiv(4, 3, 2);     // f4 = 3.0
  b.fsqrt(5, 4);       // f5 = sqrt(3)
  b.fcvt_ds(6, 1);     // f6 = 1.5 (exact in float)
  b.halt();
  b.end_function();
  return std::move(b).build();
}

TEST(Machine, ArithmeticSemantics) {
  const Program p = arithmetic_program();
  Machine m(p, {});
  m.run();
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.int_reg(3), 42);
  EXPECT_EQ(m.int_reg(4), 40);
  EXPECT_EQ(m.int_reg(5), 5);
  EXPECT_EQ(m.int_reg(6), -1);
  EXPECT_DOUBLE_EQ(m.fp_reg(3), 6.0);
  EXPECT_DOUBLE_EQ(m.fp_reg(4), 3.0);
  EXPECT_NEAR(m.fp_reg(5), 1.7320508, 1e-6);
  EXPECT_DOUBLE_EQ(m.fp_reg(6), 1.5);
}

TEST(Machine, LoadStoreRoundTrip) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0x10000);
  b.li(2, 1234);
  b.store(2, 1, 0);
  b.load(3, 1, 0);
  b.fli(4, 9.5);
  b.fstore(4, 1, 8);
  b.fload(5, 1, 8);
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  m.run();
  EXPECT_EQ(m.int_reg(3), 1234);
  EXPECT_DOUBLE_EQ(m.fp_reg(5), 9.5);
  EXPECT_EQ(m.memory().read_i64(0x10000), 1234);
}

TEST(Machine, LoopAndBranchSemantics) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  b.li(2, 10);
  b.li(3, 0);
  auto loop = b.new_label();
  b.bind(loop);
  b.add(3, 3, 1);
  b.addi(1, 1, 1);
  b.blt(1, 2, loop);
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  m.run();
  EXPECT_EQ(m.int_reg(1), 10);
  EXPECT_EQ(m.int_reg(3), 45);  // 0+1+...+9
}

TEST(Machine, CallReturnNesting) {
  ProgramBuilder b;
  b.begin_function("leaf");
  b.addi(10, 10, 1);
  b.ret();
  b.end_function();
  b.begin_function("mid");
  b.call("leaf");
  b.call("leaf");
  b.ret();
  b.end_function();
  b.begin_function("main");
  b.call("mid");
  b.call("leaf");
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  m.run();
  EXPECT_EQ(m.int_reg(10), 3);
}

TEST(Machine, ReturnFromOutermostFrameHalts) {
  ProgramBuilder b;
  b.begin_function("main");
  b.nop();
  b.ret();  // no caller: ends the run
  b.end_function();
  Machine m(std::move(b).build(), {});
  const RunResult r = m.run();
  EXPECT_TRUE(r.halted);
}

TEST(Machine, EventCountsForStraightLineCode) {
  const Program p = arithmetic_program();
  Machine m(p, {});
  SignalCounter counter(m);
  m.run();
  EXPECT_EQ(counter[SimEvent::kInstructions], p.size());
  EXPECT_EQ(counter[SimEvent::kFpMul], 1u);
  EXPECT_EQ(counter[SimEvent::kFpFma], 1u);
  EXPECT_EQ(counter[SimEvent::kFpDiv], 1u);
  EXPECT_EQ(counter[SimEvent::kFpSqrt], 1u);
  EXPECT_EQ(counter[SimEvent::kFpCvt], 1u);
  EXPECT_EQ(counter[SimEvent::kIntIns], 6u);  // li,li,mul,addi,divi,sub
  EXPECT_EQ(counter[SimEvent::kCycles], m.cycles());
}

TEST(Machine, MemoryEventsAndLatency) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0x20000);
  b.load(2, 1, 0);   // cold: L1D miss + L2 miss + DTLB miss
  b.load(3, 1, 0);   // hot: all hits
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  SignalCounter counter(m);
  m.run();
  EXPECT_EQ(counter[SimEvent::kLoadIns], 2u);
  EXPECT_EQ(counter[SimEvent::kL1DAccess], 2u);
  EXPECT_EQ(counter[SimEvent::kL1DMiss], 1u);
  // L2 is unified: one data miss plus one cold instruction-fetch miss.
  EXPECT_EQ(counter[SimEvent::kL2Miss], 2u);
  EXPECT_EQ(counter[SimEvent::kDTlbMiss], 1u);
}

TEST(Machine, BranchEvents) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  b.li(2, 100);
  auto loop = b.new_label();
  b.bind(loop);
  b.addi(1, 1, 1);
  b.blt(1, 2, loop);
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  SignalCounter counter(m);
  m.run();
  EXPECT_EQ(counter[SimEvent::kBrIns], 100u);
  EXPECT_EQ(counter[SimEvent::kBrTaken], 99u);
  EXPECT_GT(counter[SimEvent::kBrMispred], 0u);   // warmup + exit
  EXPECT_LT(counter[SimEvent::kBrMispred], 16u);  // predictor learns
}

TEST(Machine, InstructionBudgetStopsRun) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  auto loop = b.new_label();
  b.bind(loop);
  b.addi(1, 1, 1);
  b.jump(loop);  // infinite
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  const RunResult r = m.run(1000);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.instructions, 1000u);
}

TEST(Machine, ChargeCyclesCountsAsOverheadAndCycles) {
  ProgramBuilder b;
  b.begin_function("main");
  b.nop();
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  SignalCounter counter(m);
  m.charge_cycles(500);
  m.run();
  EXPECT_EQ(m.overhead_cycles(), 500u);
  EXPECT_EQ(counter[SimEvent::kCycles], m.cycles());
  EXPECT_GE(m.cycles(), 502u);
}

TEST(Machine, CycleTimerFiresAtPeriod) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  b.li(2, 5000);
  auto loop = b.new_label();
  b.bind(loop);
  b.addi(1, 1, 1);
  b.blt(1, 2, loop);
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  int fires = 0;
  m.add_cycle_timer(100, [&fires](Machine&) { ++fires; });
  m.run();
  // ~2 cycles/iteration * 5000 iterations => on the order of 100 fires.
  EXPECT_GT(fires, 50);
  EXPECT_LT(fires, 400);
}

TEST(Machine, CancelTimerStopsFiring) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  b.li(2, 2000);
  auto loop = b.new_label();
  b.bind(loop);
  b.addi(1, 1, 1);
  b.blt(1, 2, loop);
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  int fires = 0;
  const int id = m.add_cycle_timer(50, [&fires](Machine&) { ++fires; });
  m.run(200);
  const int fires_before = fires;
  EXPECT_GT(fires_before, 0);
  m.cancel_timer(id);
  m.run();
  EXPECT_EQ(fires, fires_before);
}

TEST(Machine, InterruptDeliveredAfterDelay) {
  ProgramBuilder b;
  b.begin_function("main");
  for (int i = 0; i < 32; ++i) b.nop();
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  std::uint64_t delivered_retired = 0;
  std::uint64_t delivered_pc = 0;
  m.run(4);  // retire 4 instructions
  m.schedule_interrupt(3, instr_address(3),
                       [&](const InterruptContext& ctx) {
                         delivered_retired = ctx.retired;
                         delivered_pc = ctx.pc_delivered;
                       });
  m.run();
  EXPECT_EQ(delivered_retired, 7u);
  // Delivered at the instruction that retired 3 later (index 6).
  EXPECT_EQ(delivered_pc, instr_address(6));
}

TEST(Machine, ZeroDelayInterruptDeliveredImmediately) {
  ProgramBuilder b;
  b.begin_function("main");
  for (int i = 0; i < 8; ++i) b.nop();
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  bool fired = false;
  m.schedule_interrupt(0, 0, [&](const InterruptContext&) { fired = true; });
  m.step();
  EXPECT_TRUE(fired);
}

TEST(Machine, ProbeHandlerInvokedWithId) {
  ProgramBuilder b;
  b.begin_function("main");
  b.probe(7);
  b.probe(9);
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  std::vector<std::int64_t> seen;
  m.set_probe_handler(
      [&seen](std::int64_t id, Machine&) { seen.push_back(id); });
  m.run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{7, 9}));
}

TEST(Machine, StallCyclesAreCostMinusOne) {
  ProgramBuilder b;
  b.begin_function("main");
  b.fli(1, 2.0);
  b.fli(2, 3.0);
  b.fdiv(3, 1, 2);  // long-latency op
  b.halt();
  b.end_function();
  MachineConfig config;
  Machine m(std::move(b).build(), config);
  SignalCounter counter(m);
  m.run();
  EXPECT_GE(counter[SimEvent::kStallCycles], config.fp_div_latency);
  EXPECT_EQ(counter[SimEvent::kCycles],
            counter[SimEvent::kInstructions] +
                counter[SimEvent::kStallCycles]);
}

TEST(Machine, MicrosecondsFollowFrequency) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  b.li(2, 100000);
  auto loop = b.new_label();
  b.bind(loop);
  b.addi(1, 1, 1);
  b.blt(1, 2, loop);
  b.halt();
  b.end_function();
  MachineConfig config;
  config.frequency_ghz = 2.0;
  Machine m(std::move(b).build(), config);
  m.run();
  EXPECT_EQ(m.microseconds(),
            static_cast<std::uint64_t>(
                static_cast<double>(m.cycles()) / 2000.0));
}

}  // namespace
}  // namespace papirepro::sim
