#include "sim/program.h"

#include <gtest/gtest.h>

namespace papirepro::sim {
namespace {

Program tiny_loop() {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  b.li(2, 3);
  auto loop = b.new_label();
  b.bind(loop);
  b.addi(1, 1, 1);
  b.blt(1, 2, loop);
  b.halt();
  b.end_function();
  return std::move(b).build();
}

TEST(ProgramBuilder, ResolvesBackwardLabels) {
  const Program p = tiny_loop();
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.at(3).op, Opcode::kBlt);
  EXPECT_EQ(p.at(3).target, 2);  // loop bound at instruction 2
}

TEST(ProgramBuilder, ResolvesForwardLabels) {
  ProgramBuilder b;
  b.begin_function("main");
  auto skip = b.new_label();
  b.li(1, 1);
  b.beq(1, 1, skip);
  b.li(2, 99);  // skipped
  b.bind(skip);
  b.halt();
  b.end_function();
  const Program p = std::move(b).build();
  EXPECT_EQ(p.at(1).target, 3);
}

TEST(ProgramBuilder, ResolvesCallsByName) {
  ProgramBuilder b;
  b.begin_function("callee");
  b.nop();
  b.ret();
  b.end_function();
  b.begin_function("main");
  b.call("callee");
  b.halt();
  b.end_function();
  const Program p = std::move(b).build();
  EXPECT_EQ(p.at(2).op, Opcode::kCall);
  EXPECT_EQ(p.at(2).target, 0);
  EXPECT_EQ(p.entry(), 2);  // main, not the first function
}

TEST(Program, FunctionLookup) {
  const Program p = tiny_loop();
  const Function* f = p.function_at(2);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->name, "main");
  EXPECT_EQ(p.find_function("main"), f);
  EXPECT_EQ(p.find_function("nope"), nullptr);
  EXPECT_EQ(p.function_at(999), nullptr);
}

TEST(Program, LineDebugInfo) {
  ProgramBuilder b;
  b.begin_function("main");
  b.set_line(10);
  b.nop();
  b.set_line(20);
  b.nop();
  b.halt();
  b.end_function();
  const Program p = std::move(b).build();
  EXPECT_EQ(p.line_of(0), 10u);
  EXPECT_EQ(p.line_of(1), 20u);
  EXPECT_EQ(p.line_of(2), 20u);
}

TEST(Program, FromPartsPicksMainEntry) {
  std::vector<Instruction> code = {{.op = Opcode::kNop},
                                   {.op = Opcode::kHalt}};
  std::vector<Function> funcs = {{"aux", 0, 1}, {"main", 1, 2}};
  const Program p = Program::from_parts(code, funcs);
  EXPECT_EQ(p.entry(), 1);
}

TEST(Program, DumpContainsFunctionsAndInstructions) {
  const Program p = tiny_loop();
  const std::string d = p.dump();
  EXPECT_NE(d.find("main:"), std::string::npos);
  EXPECT_NE(d.find("blt"), std::string::npos);
}

TEST(ProgramBuilder, FliRoundTripsDoubles) {
  ProgramBuilder b;
  b.begin_function("main");
  b.fli(3, 2.718281828);
  b.halt();
  b.end_function();
  const Program p = std::move(b).build();
  EXPECT_EQ(p.at(0).op, Opcode::kFLi);
}

}  // namespace
}  // namespace papirepro::sim
