// Property checks on workload memory-region metadata: regions must not
// overlap, and (for kernels that declare them) all data traffic must
// fall inside the declared objects — the contract the per-object memory
// profiler depends on.
#include <gtest/gtest.h>

#include "sim/workload_registry.h"
#include "test_util.h"
#include "tools/memprof.h"

namespace papirepro::sim {
namespace {

class RegionContract : public ::testing::TestWithParam<std::string_view> {
};

TEST_P(RegionContract, RegionsAreDisjoint) {
  auto w = make_workload(GetParam(), 0);
  ASSERT_TRUE(w.has_value());
  for (std::size_t i = 0; i < w->regions.size(); ++i) {
    EXPECT_GT(w->regions[i].bytes, 0u) << w->regions[i].name;
    for (std::size_t j = i + 1; j < w->regions.size(); ++j) {
      const MemoryRegion& a = w->regions[i];
      const MemoryRegion& b = w->regions[j];
      const bool overlap =
          a.base < b.base + b.bytes && b.base < a.base + a.bytes;
      EXPECT_FALSE(overlap) << a.name << " overlaps " << b.name;
    }
  }
}

TEST_P(RegionContract, AllDataTrafficInsideDeclaredObjects) {
  auto w = make_workload(GetParam(), 0);
  ASSERT_TRUE(w.has_value());
  if (w->regions.empty()) GTEST_SKIP() << "kernel declares no regions";
  Machine m(w->program, {});
  if (w->setup) w->setup(m);
  tools::MemoryProfiler prof(m, w->regions);
  ASSERT_TRUE(m.run(50'000'000).halted);
  const tools::RegionStats* other = prof.find("<other>");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->accesses, 0u)
      << GetParam() << " touches memory outside its declared objects";
  // And the declared objects saw the kernel's loads+stores.
  std::uint64_t total = 0;
  for (const tools::RegionStats& rs : prof.stats()) total += rs.accesses;
  if (w->expected.loads && w->expected.stores) {
    EXPECT_EQ(total, *w->expected.loads + *w->expected.stores);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, RegionContract,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace papirepro::sim
