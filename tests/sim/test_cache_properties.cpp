// Property sweeps over the cache model: miss counts for regular access
// patterns must match closed-form expectations across a grid of cache
// geometries — the "micro-benchmarks for which the expected counts are
// known" methodology, applied to the substrate itself.
#include <gtest/gtest.h>

#include "sim/cache.h"

namespace papirepro::sim {
namespace {

struct Geometry {
  std::uint32_t size_kb;
  std::uint32_t line;
  std::uint32_t assoc;
};

void PrintTo(const Geometry& g, std::ostream* os) {
  *os << g.size_kb << "KB/" << g.line << "B/" << g.assoc << "way";
}

class CacheGeometry : public ::testing::TestWithParam<Geometry> {
 protected:
  Cache make() const {
    const Geometry& g = GetParam();
    return Cache({.size_bytes = g.size_kb * 1024, .line_bytes = g.line,
                  .associativity = g.assoc, .hit_latency = 0,
                  .miss_latency = 10});
  }
};

TEST_P(CacheGeometry, SequentialWalkMissesOncePerLine) {
  Cache c = make();
  const std::uint32_t line = GetParam().line;
  const std::uint64_t bytes = 4ULL * GetParam().size_kb * 1024;
  for (std::uint64_t a = 0; a < bytes; a += 8) c.access(a);
  // One compulsory miss per distinct line, no conflict misses for a
  // single sequential pass.
  EXPECT_EQ(c.stats().misses, bytes / line);
  EXPECT_EQ(c.stats().accesses, bytes / 8);
}

TEST_P(CacheGeometry, ResidentWorkingSetHitsAfterWarmup) {
  Cache c = make();
  const std::uint64_t bytes = GetParam().size_kb * 1024;  // exactly fits
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t a = 0; a < bytes; a += GetParam().line) {
      c.access(a);
    }
  }
  // LRU + power-of-two geometry: after the cold pass everything hits.
  EXPECT_EQ(c.stats().misses, bytes / GetParam().line);
}

TEST_P(CacheGeometry, ThrashingSetAlwaysMisses) {
  Cache c = make();
  const Geometry& g = GetParam();
  const std::uint64_t set_stride =
      static_cast<std::uint64_t>(g.line) *
      (g.size_kb * 1024 / (g.line * g.assoc));
  // assoc+1 lines mapping to set 0, round-robin: LRU evicts the one we
  // need next, every access misses after warmup.
  const std::uint32_t k = g.assoc + 1;
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t i = 0; i < k; ++i) {
      c.access(i * set_stride);
    }
  }
  EXPECT_EQ(c.stats().misses, c.stats().accesses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{8, 32, 1}, Geometry{8, 64, 2},
                      Geometry{16, 64, 4}, Geometry{32, 64, 4},
                      Geometry{32, 128, 8}, Geometry{64, 64, 2},
                      Geometry{256, 64, 8}));

}  // namespace
}  // namespace papirepro::sim
