#include "sim/workload_registry.h"

#include <gtest/gtest.h>

namespace papirepro::sim {
namespace {

TEST(WorkloadRegistry, EveryListedNameBuildsAndRuns) {
  for (std::string_view name : workload_names()) {
    auto w = make_workload(name, 0);
    ASSERT_TRUE(w.has_value()) << name;
    Machine m(w->program, {});
    if (w->setup) w->setup(m);
    const RunResult r = m.run(20'000'000);
    EXPECT_TRUE(r.halted) << name << " did not halt";
    EXPECT_GT(r.instructions, 0u) << name;
  }
}

TEST(WorkloadRegistry, UnknownNameRejected) {
  EXPECT_FALSE(make_workload("quicksort3000").has_value());
}

TEST(WorkloadRegistry, SizeKnobScalesWork) {
  auto small = make_workload("saxpy", 100);
  auto large = make_workload("saxpy", 1000);
  Machine ms(small->program, {});
  small->setup(ms);
  Machine ml(large->program, {});
  large->setup(ml);
  ms.run();
  ml.run();
  EXPECT_GT(ml.retired(), 5 * ms.retired());
}

TEST(WorkloadRegistry, BlockedMatmulHandlesIndivisibleSizes) {
  auto w = make_workload("matmul_blocked", 10);  // 10 % 8 != 0 -> block 1
  ASSERT_TRUE(w.has_value());
  Machine m(w->program, {});
  w->setup(m);
  EXPECT_TRUE(m.run(50'000'000).halted);
}

}  // namespace
}  // namespace papirepro::sim
