#include "sim/branch_predictor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace papirepro::sim {
namespace {

TEST(BranchPredictor, LearnsAlwaysTaken) {
  BranchPredictor bp({});
  constexpr std::uint64_t kPc = 0x400100;
  int wrong = 0;
  for (int i = 0; i < 100; ++i) {
    if (!bp.predict_and_train(kPc, true)) ++wrong;
  }
  // Warmup: each distinct history value hits a fresh weakly-not-taken
  // pattern-table entry, so up to history_bits + a couple mispredict.
  EXPECT_LE(wrong, 12);
  EXPECT_EQ(bp.stats().conditional, 100u);
  EXPECT_EQ(bp.stats().taken, 100u);
}

TEST(BranchPredictor, LearnsAlwaysNotTaken) {
  BranchPredictor bp({});
  int wrong = 0;
  for (int i = 0; i < 100; ++i) {
    if (!bp.predict_and_train(0x400200, false)) ++wrong;
  }
  EXPECT_LE(wrong, 1);  // initialized weakly not-taken
}

TEST(BranchPredictor, RandomBranchesMispredictOften) {
  BranchPredictor bp({});
  papirepro::Xoshiro256 rng(77);
  std::uint64_t wrong = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (!bp.predict_and_train(0x400300, (rng.next() & 1) != 0)) ++wrong;
  }
  const double rate = static_cast<double>(wrong) / kN;
  // Unpredictable stream: misprediction rate near 50%.
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST(BranchPredictor, LoopPatternLearnedViaHistory) {
  // Pattern T T T N repeated: gshare history should get most right.
  BranchPredictor bp({.table_bits = 12, .history_bits = 8,
                      .mispredict_penalty = 12});
  std::uint64_t wrong = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    const bool taken = (i % 4) != 3;
    if (!bp.predict_and_train(0x400400, taken)) ++wrong;
  }
  EXPECT_LT(static_cast<double>(wrong) / kN, 0.10);
}

TEST(BranchPredictor, StatsAccumulateAndReset) {
  BranchPredictor bp({});
  bp.predict_and_train(0x1000, true);
  bp.predict_and_train(0x1000, false);
  EXPECT_EQ(bp.stats().conditional, 2u);
  EXPECT_EQ(bp.stats().taken, 1u);
  bp.reset_stats();
  EXPECT_EQ(bp.stats().conditional, 0u);
}

}  // namespace
}  // namespace papirepro::sim
