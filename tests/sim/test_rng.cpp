#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace papirepro {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DiffersAcrossSeeds) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Xoshiro256, GeometricRespectsCap) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.next_geometric(0.1, 5), 5u);
  }
}

TEST(Xoshiro256, GeometricMeanMatchesTheory) {
  Xoshiro256 rng(13);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.next_geometric(0.5, 1000);
  // Mean of geometric (failures before success), p=0.5: (1-p)/p = 1.
  EXPECT_NEAR(sum / kN, 1.0, 0.05);
}

}  // namespace
}  // namespace papirepro
