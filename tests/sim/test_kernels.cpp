#include "sim/kernels.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace papirepro::sim {
namespace {

using papirepro::test::SignalCounter;

struct RunCounts {
  std::uint64_t fp_add, fp_mul, fp_fma, fp_cvt, loads, stores, branches;
  std::uint64_t instructions;
};

RunCounts run_and_count(const Workload& w, Machine& m) {
  SignalCounter c(m);
  m.run();
  EXPECT_TRUE(m.halted()) << w.name << " did not halt";
  return {c[SimEvent::kFpAdd],  c[SimEvent::kFpMul],
          c[SimEvent::kFpFma],  c[SimEvent::kFpCvt],
          c[SimEvent::kLoadIns], c[SimEvent::kStoreIns],
          c[SimEvent::kBrIns],  c[SimEvent::kInstructions]};
}

RunCounts run_and_count(const Workload& w) {
  Machine m(w.program, {});
  if (w.setup) w.setup(m);
  return run_and_count(w, m);
}

void expect_matches(const Workload& w, const RunCounts& c) {
  if (w.expected.fp_add) EXPECT_EQ(c.fp_add, *w.expected.fp_add) << w.name;
  if (w.expected.fp_mul) EXPECT_EQ(c.fp_mul, *w.expected.fp_mul) << w.name;
  if (w.expected.fp_fma) EXPECT_EQ(c.fp_fma, *w.expected.fp_fma) << w.name;
  if (w.expected.fp_cvt) EXPECT_EQ(c.fp_cvt, *w.expected.fp_cvt) << w.name;
  if (w.expected.loads) EXPECT_EQ(c.loads, *w.expected.loads) << w.name;
  if (w.expected.stores) EXPECT_EQ(c.stores, *w.expected.stores) << w.name;
  if (w.expected.branches) {
    EXPECT_EQ(c.branches, *w.expected.branches) << w.name;
  }
}

TEST(Kernels, SaxpyCountsAndValues) {
  const Workload w = make_saxpy(100);
  Machine m(w.program, {});
  w.setup(m);
  const RunCounts c = run_and_count(w, m);
  expect_matches(w, c);
  // y[i] = 1.0 + 2.5 * (0.5 * i)
  EXPECT_DOUBLE_EQ(m.memory().read_f64(0x24000000 + 8 * 10),
                   1.0 + 2.5 * 5.0);
}

TEST(Kernels, MatmulCountsAndValues) {
  const std::int64_t n = 6;
  const Workload w = make_matmul(n);
  Machine m(w.program, {});
  w.setup(m);
  const RunCounts c = run_and_count(w, m);
  expect_matches(w, c);

  // Cross-check C[2][3] against a host-side reference.
  auto a = [&](std::int64_t i, std::int64_t k) {
    return 1.0 + static_cast<double>((i * n + k) % 7);
  };
  auto bmat = [&](std::int64_t k, std::int64_t j) {
    return 2.0 - static_cast<double>((k * n + j) % 5);
  };
  double want = 0;
  for (std::int64_t k = 0; k < n; ++k) want += a(2, k) * bmat(k, 3);
  EXPECT_DOUBLE_EQ(m.memory().read_f64(0x18000000 + 8 * (2 * n + 3)),
                   want);
}

TEST(Kernels, BlockedMatmulMatchesNaiveResult) {
  const std::int64_t n = 8;
  const Workload naive = make_matmul(n);
  const Workload blocked = make_matmul_blocked(n, 4);

  Machine m1(naive.program, {});
  naive.setup(m1);
  m1.run();
  Machine m2(blocked.program, {});
  blocked.setup(m2);
  m2.run();

  for (std::int64_t i = 0; i < n * n; ++i) {
    EXPECT_DOUBLE_EQ(m1.memory().read_f64(0x18000000 + 8 * i),
                     m2.memory().read_f64(0x18000000 + 8 * i))
        << "C[" << i << "] differs";
  }
}

TEST(Kernels, BlockedMatmulCounts) {
  const Workload w = make_matmul_blocked(8, 4);
  expect_matches(w, run_and_count(w));
}

TEST(Kernels, BlockedMatmulHasFewerMissesThanNaive) {
  // The canonical PAPI tuning story: same FLOPs, fewer cache misses.
  const std::int64_t n = 64;
  const Workload naive = make_matmul(n);
  const Workload blocked = make_matmul_blocked(n, 8);

  MachineConfig small;
  small.l1d = {.size_bytes = 8 * 1024, .line_bytes = 64,
               .associativity = 2, .miss_latency = 8};

  Machine m1(naive.program, small);
  naive.setup(m1);
  SignalCounter c1(m1);
  m1.run();

  Machine m2(blocked.program, small);
  blocked.setup(m2);
  SignalCounter c2(m2);
  m2.run();

  EXPECT_EQ(c1[SimEvent::kFpFma], c2[SimEvent::kFpFma]);
  EXPECT_LT(c2[SimEvent::kL1DMiss], c1[SimEvent::kL1DMiss] / 2)
      << "blocking should cut L1 misses substantially";
}

TEST(Kernels, StreamTriadCountsAndValues) {
  const Workload w = make_stream_triad(64);
  Machine m(w.program, {});
  w.setup(m);
  const RunCounts c = run_and_count(w, m);
  expect_matches(w, c);
  // a[5] = b[5] + 3*c[5] = 5 + 3/(1+5)
  EXPECT_DOUBLE_EQ(m.memory().read_f64(0x20000000 + 8 * 5),
                   5.0 + 3.0 * (1.0 / 6.0));
}

TEST(Kernels, PointerChaseVisitsWholeCycle) {
  const Workload w = make_pointer_chase(64, 64, /*seed=*/5);
  Machine m(w.program, {});
  w.setup(m);
  const RunCounts c = run_and_count(w, m);
  expect_matches(w, c);
  // After exactly `nodes` hops of a single-cycle permutation we are back
  // at the start node.
  Machine m2(w.program, {});
  w.setup(m2);
  m2.run(3);  // li r4, li r2, li r1(start address)
  EXPECT_EQ(m.int_reg(1), m2.int_reg(1));
  EXPECT_GT(c.loads, 0u);
}

TEST(Kernels, PointerChaseDeterministicPerSeed) {
  const Workload w1 = make_pointer_chase(128, 1000, 42);
  const Workload w2 = make_pointer_chase(128, 1000, 42);
  Machine m1(w1.program, {}), m2(w2.program, {});
  w1.setup(m1);
  w2.setup(m2);
  m1.run();
  m2.run();
  EXPECT_EQ(m1.int_reg(1), m2.int_reg(1));
  EXPECT_EQ(m1.cycles(), m2.cycles());
}

TEST(Kernels, BranchyCounts) {
  const Workload w = make_branchy(500, 7);
  expect_matches(w, run_and_count(w));
}

TEST(Kernels, BranchyHasHighMispredictRate) {
  const Workload w = make_branchy(20000, 3);
  Machine m(w.program, {});
  w.setup(m);
  SignalCounter c(m);
  m.run();
  // The data-dependent branch is a coin flip; the loop branch is
  // predictable.  Expect a sizable mispredict fraction overall.
  const double rate = static_cast<double>(c[SimEvent::kBrMispred]) /
                      static_cast<double>(c[SimEvent::kBrIns]);
  EXPECT_GT(rate, 0.15);
}

TEST(Kernels, FcvtMixedCounts) {
  const Workload w = make_fcvt_mixed(300);
  expect_matches(w, run_and_count(w));
}

TEST(Kernels, MultiphaseCounts) {
  const Workload w = make_multiphase(3, 500);
  expect_matches(w, run_and_count(w));
}

TEST(Kernels, TightCallCounts) {
  const Workload w = make_tight_call(200, 4);
  expect_matches(w, run_and_count(w));
}

TEST(Kernels, EmptyLoopCounts) {
  const Workload w = make_empty_loop(1000);
  expect_matches(w, run_and_count(w));
}

TEST(Kernels, Stencil2dCountsAndValues) {
  const std::int64_t n = 8;
  const Workload w = make_stencil2d(n, 1);
  Machine m(w.program, {});
  w.setup(m);
  const RunCounts c = run_and_count(w, m);
  expect_matches(w, c);
  // Host-side reference for out[3][4].
  auto in = [&](std::int64_t i, std::int64_t j) {
    return static_cast<double>((i * n + j) % 11) * 0.5;
  };
  const double want =
      0.25 * (in(2, 4) + in(4, 4) + in(3, 3) + in(3, 5));
  EXPECT_DOUBLE_EQ(m.memory().read_f64(0x14000000 + 8 * (3 * n + 4)),
                   want);
}

TEST(Kernels, Stencil2dMultiSweepScalesCounts) {
  const Workload w1 = make_stencil2d(16, 1);
  const Workload w3 = make_stencil2d(16, 3);
  EXPECT_EQ(*w3.expected.flops, 3 * *w1.expected.flops);
  expect_matches(w3, run_and_count(w3));
}

TEST(Kernels, ReductionCountsAndValue) {
  const std::int64_t n = 1000;
  const Workload w = make_reduction(n);
  Machine m(w.program, {});
  w.setup(m);
  const RunCounts c = run_and_count(w, m);
  expect_matches(w, c);
  // sum of 0.5*i for i in [0, n)
  EXPECT_DOUBLE_EQ(m.fp_reg(0),
                   0.5 * static_cast<double>(n) *
                       static_cast<double>(n - 1) / 2.0);
}

TEST(Kernels, RandomAccessCounts) {
  const Workload w = make_random_access(1 << 12, 5'000);
  expect_matches(w, run_and_count(w));
}

TEST(Kernels, RandomAccessStressesTlbAndCache) {
  // A 64K-word (512 KiB) table walked randomly: most accesses miss the
  // 64-entry TLB and the 32 KiB L1.
  const Workload w = make_random_access(1 << 16, 20'000);
  Machine m(w.program, {});
  SignalCounter c(m);
  m.run();
  EXPECT_GT(c[SimEvent::kDTlbMiss], 10'000u);
  EXPECT_GT(c[SimEvent::kL1DMiss], 15'000u);
}

TEST(Kernels, RandomAccessDeterministic) {
  const Workload a = make_random_access(1 << 10, 10'000);
  const Workload b = make_random_access(1 << 10, 10'000);
  Machine ma(a.program, {}), mb(b.program, {});
  ma.run();
  mb.run();
  EXPECT_EQ(ma.cycles(), mb.cycles());
  EXPECT_EQ(ma.int_reg(5), mb.int_reg(5));  // identical LCG stream
}

}  // namespace
}  // namespace papirepro::sim
