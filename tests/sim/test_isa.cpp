#include "sim/isa.h"

#include <gtest/gtest.h>

namespace papirepro::sim {
namespace {

TEST(Isa, OpClassCoversEveryOpcode) {
  // Every opcode must classify to something meaningful (the switch has
  // no default fall-through surprises).
  EXPECT_EQ(op_class(Opcode::kFMadd), OpClass::kFpFma);
  EXPECT_EQ(op_class(Opcode::kFCvtDS), OpClass::kFpCvt);
  EXPECT_EQ(op_class(Opcode::kFCvtSD), OpClass::kFpCvt);
  EXPECT_EQ(op_class(Opcode::kLoad), OpClass::kLoad);
  EXPECT_EQ(op_class(Opcode::kFLoad), OpClass::kLoad);
  EXPECT_EQ(op_class(Opcode::kStore), OpClass::kStore);
  EXPECT_EQ(op_class(Opcode::kFStore), OpClass::kStore);
  EXPECT_EQ(op_class(Opcode::kBlt), OpClass::kBranch);
  EXPECT_EQ(op_class(Opcode::kCall), OpClass::kCall);
  EXPECT_EQ(op_class(Opcode::kProbe), OpClass::kProbe);
}

TEST(Isa, ConditionalBranchPredicate) {
  EXPECT_TRUE(is_conditional_branch(Opcode::kBeq));
  EXPECT_TRUE(is_conditional_branch(Opcode::kBge));
  EXPECT_FALSE(is_conditional_branch(Opcode::kJump));
  EXPECT_FALSE(is_conditional_branch(Opcode::kCall));
}

TEST(Isa, FpArithClassification) {
  EXPECT_TRUE(is_fp_arith(OpClass::kFpAdd));
  EXPECT_TRUE(is_fp_arith(OpClass::kFpCvt));
  EXPECT_FALSE(is_fp_arith(OpClass::kFpMove));
  EXPECT_FALSE(is_fp_arith(OpClass::kIntAlu));
}

TEST(Isa, AddressRoundTrip) {
  for (std::int64_t idx : {0, 1, 17, 4095}) {
    EXPECT_EQ(address_to_index(instr_address(idx)), idx);
  }
  EXPECT_EQ(instr_address(0), kTextBase);
  EXPECT_EQ(instr_address(1), kTextBase + 4);
}

TEST(Isa, DisassembleFormats) {
  Instruction add{.op = Opcode::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3};
  EXPECT_NE(disassemble(add).find("add"), std::string::npos);

  Instruction ld{.op = Opcode::kLoad, .rd = 4, .rs1 = 5, .imm = 16};
  const std::string s = disassemble(ld);
  EXPECT_NE(s.find("ld"), std::string::npos);
  EXPECT_NE(s.find("16(r5)"), std::string::npos);

  Instruction br{.op = Opcode::kBlt, .rs1 = 1, .rs2 = 2, .target = 7};
  EXPECT_NE(disassemble(br).find("@7"), std::string::npos);
}

TEST(Isa, OpcodeNamesUnique) {
  EXPECT_EQ(opcode_name(Opcode::kFMadd), "fmadd");
  EXPECT_EQ(opcode_name(Opcode::kHalt), "halt");
  EXPECT_NE(opcode_name(Opcode::kFCvtDS), opcode_name(Opcode::kFCvtSD));
}

}  // namespace
}  // namespace papirepro::sim
