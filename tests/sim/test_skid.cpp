#include "sim/skid.h"

#include <gtest/gtest.h>

namespace papirepro::sim {
namespace {

TEST(Skid, PreciseDrawsZero) {
  Xoshiro256 rng(1);
  const SkidModel model = SkidModel::precise();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.draw(rng), 0u);
}

TEST(Skid, FixedDrawsConstant) {
  Xoshiro256 rng(2);
  const SkidModel model = SkidModel::fixed_skid(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.draw(rng), 7u);
}

TEST(Skid, GeometricRespectsBounds) {
  Xoshiro256 rng(3);
  const SkidModel model = SkidModel::out_of_order(0.3, 24, 3);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint32_t d = model.draw(rng);
    EXPECT_GE(d, 3u);
    EXPECT_LE(d, 24u);
  }
}

TEST(Skid, GeometricMeanNearTheory) {
  Xoshiro256 rng(4);
  const SkidModel model = SkidModel::out_of_order(0.5, 1000, 0);
  double sum = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) sum += model.draw(rng);
  // Geometric failures-before-success with p=0.5: mean 1.
  EXPECT_NEAR(sum / kN, 1.0, 0.05);
}

TEST(Skid, DeeperWindowsDrawLargerSkids) {
  Xoshiro256 rng_a(5), rng_b(5);
  const SkidModel shallow = SkidModel::out_of_order(0.5, 8, 1);
  const SkidModel deep = SkidModel::out_of_order(0.1, 64, 8);
  double mean_shallow = 0, mean_deep = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    mean_shallow += shallow.draw(rng_a);
    mean_deep += deep.draw(rng_b);
  }
  EXPECT_GT(mean_deep / kN, 3 * (mean_shallow / kN));
}

}  // namespace
}  // namespace papirepro::sim
