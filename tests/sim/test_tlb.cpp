#include "sim/tlb.h"

#include <gtest/gtest.h>

namespace papirepro::sim {
namespace {

TEST(Tlb, MissThenHitSamePage) {
  Tlb t({.entries = 4, .page_bits = 12, .miss_latency = 30});
  EXPECT_FALSE(t.access(0x1000));
  EXPECT_TRUE(t.access(0x1ff8));  // same 4K page
  EXPECT_TRUE(t.access(0x1000));
  EXPECT_EQ(t.stats().misses, 1u);
  EXPECT_EQ(t.stats().accesses, 3u);
}

TEST(Tlb, LruEvictionWhenFull) {
  Tlb t({.entries = 2, .page_bits = 12, .miss_latency = 30});
  t.access(0x0000);
  t.access(0x1000);
  t.access(0x2000);  // evicts page 0
  EXPECT_FALSE(t.access(0x0000));
  EXPECT_TRUE(t.access(0x2000));
}

TEST(Tlb, FlushDropsEverything) {
  Tlb t({.entries = 4, .page_bits = 12, .miss_latency = 30});
  t.access(0x1000);
  t.flush();
  EXPECT_FALSE(t.access(0x1000));
}

TEST(Tlb, LargeStrideAlwaysMisses) {
  Tlb t({.entries = 8, .page_bits = 12, .miss_latency = 30});
  for (std::uint64_t a = 0; a < 64 * 4096; a += 4096) t.access(a);
  EXPECT_EQ(t.stats().misses, t.stats().accesses);
}

TEST(Tlb, ResetStats) {
  Tlb t({.entries = 4, .page_bits = 12, .miss_latency = 30});
  t.access(0x1000);
  t.reset_stats();
  EXPECT_EQ(t.stats().accesses, 0u);
  EXPECT_EQ(t.stats().misses, 0u);
}

}  // namespace
}  // namespace papirepro::sim
