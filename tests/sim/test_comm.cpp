#include "sim/comm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "sim/program.h"

namespace papirepro::sim {
namespace {

/// Rank 0 sends `words` values to rank 1; rank 1 receives them.
Program sender_program(std::int64_t words) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(CommWorld::kAddrReg, 0x1000);
  for (std::int64_t i = 0; i < words; ++i) {
    b.li(5, 100 + i);
    b.store(5, CommWorld::kAddrReg, 8 * i);
  }
  b.li(CommWorld::kCountReg, words);
  b.probe(CommWorld::kSendBase + 1);
  b.halt();
  b.end_function();
  return std::move(b).build();
}

Program receiver_program(std::int64_t words) {
  ProgramBuilder b;
  b.begin_function("main");
  b.li(CommWorld::kAddrReg, 0x2000);
  b.li(CommWorld::kCountReg, words);
  b.probe(CommWorld::kRecvBase + 0);
  b.halt();
  b.end_function();
  return std::move(b).build();
}

TEST(Comm, PointToPointDelivery) {
  Machine sender(sender_program(4), {});
  Machine receiver(receiver_program(4), {});
  CommWorld world({&sender, &receiver});
  ASSERT_TRUE(world.run_lockstep(100, 1'000));
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(receiver.memory().read_i64(0x2000 + 8 * i), 100 + i);
  }
  EXPECT_EQ(world.stats(0).sends, 1u);
  EXPECT_EQ(world.stats(0).words_sent, 4u);
  EXPECT_EQ(world.stats(1).recvs, 1u);
}

TEST(Comm, RecvBusyWaitsUntilMessageArrives) {
  // The receiver starts first and must spin: wait_retries > 0 and the
  // spin shows up as extra retired instructions.
  Machine receiver(receiver_program(2), {});
  Machine slow_sender(sender_program(2), {});
  // Receiver gets large quanta before the sender makes progress.
  CommWorld world({&slow_sender, &receiver});
  receiver.run(500);  // spin alone: no message yet
  EXPECT_FALSE(receiver.halted());
  EXPECT_GT(world.stats(1).wait_retries, 100u);
  ASSERT_TRUE(world.run_lockstep(100, 1'000));
  EXPECT_TRUE(receiver.halted());
  EXPECT_EQ(receiver.memory().read_i64(0x2000), 100);
}

TEST(Comm, DeadlockExhaustsBudget) {
  // Both ranks receive first: classic deadlock; run_lockstep returns
  // false instead of hanging.
  Machine a(receiver_program(1), {});
  Machine b(receiver_program(1), {});
  CommWorld world({&a, &b});
  EXPECT_FALSE(world.run_lockstep(100, 200));
  EXPECT_FALSE(a.halted());
  EXPECT_FALSE(b.halted());
}

TEST(Comm, RingExchangeCompletes) {
  constexpr std::size_t kRanks = 4;
  std::vector<Workload> workloads;
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<Machine*> raw;
  for (std::size_t r = 0; r < kRanks; ++r) {
    workloads.push_back(make_ring_rank(r, kRanks, /*iters=*/10,
                                       /*work=*/200, /*chunk_words=*/8));
    machines.push_back(
        std::make_unique<Machine>(workloads.back().program, MachineConfig{}));
    raw.push_back(machines.back().get());
  }
  CommWorld world(raw);
  ASSERT_TRUE(world.run_lockstep(500, 100'000));
  for (std::size_t r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(raw[r]->halted()) << "rank " << r;
    EXPECT_EQ(world.stats(r).sends, 10u) << "rank " << r;
    EXPECT_EQ(world.stats(r).recvs, 10u) << "rank " << r;
    // Last received payload word: the left neighbour's final iteration.
    EXPECT_EQ(raw[r]->memory().read_i64(0x28000000), 9) << "rank " << r;
  }
}

TEST(Comm, MessagesQueueInOrder) {
  // Sender fires 3 sends before the receiver drains them: FIFO order.
  ProgramBuilder bs;
  bs.begin_function("main");
  bs.li(CommWorld::kAddrReg, 0x1000);
  bs.li(CommWorld::kCountReg, 1);
  for (int i = 0; i < 3; ++i) {
    bs.li(5, 7 + i);
    bs.store(5, CommWorld::kAddrReg, 0);
    bs.probe(CommWorld::kSendBase + 1);
  }
  bs.halt();
  bs.end_function();

  ProgramBuilder br;
  br.begin_function("main");
  br.li(CommWorld::kCountReg, 1);
  for (int i = 0; i < 3; ++i) {
    br.li(CommWorld::kAddrReg, 0x2000 + 8 * i);
    br.probe(CommWorld::kRecvBase + 0);
  }
  br.halt();
  br.end_function();

  Machine sender(std::move(bs).build(), {});
  Machine receiver(std::move(br).build(), {});
  CommWorld world({&sender, &receiver});
  ASSERT_TRUE(world.run_lockstep(50, 1'000));
  EXPECT_EQ(receiver.memory().read_i64(0x2000), 7);
  EXPECT_EQ(receiver.memory().read_i64(0x2008), 8);
  EXPECT_EQ(receiver.memory().read_i64(0x2010), 9);
}

TEST(Comm, NonCommProbesStillChain) {
  ProgramBuilder b;
  b.begin_function("main");
  b.probe(42);  // application probe, not a comm id
  b.halt();
  b.end_function();
  Machine m(std::move(b).build(), {});
  int app = 0;
  m.set_probe_handler([&](std::int64_t id, Machine&) {
    if (id == 42) ++app;
  });
  Machine other(receiver_program(1), {});
  CommWorld world({&m, &other});
  m.run();
  EXPECT_EQ(app, 1);
}

TEST(Comm, RingRankExpectedCounts) {
  const Workload w = make_ring_rank(0, 2, 5, 100, 4);
  EXPECT_EQ(*w.expected.fp_fma, 500u);
  EXPECT_EQ(*w.expected.flops, 1000u);
}

// CommStats* runs in the TSan CI job: a live-polling collector reads
// rank counters while the ranks run on their own threads.
TEST(CommStatsThreaded, PollingDuringRunThreadedIsRaceFree) {
  constexpr std::size_t kRanks = 4;
  constexpr std::int64_t kIters = 50;
  std::vector<Workload> workloads;
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<Machine*> raw;
  for (std::size_t r = 0; r < kRanks; ++r) {
    workloads.push_back(make_ring_rank(r, kRanks, kIters,
                                       /*work=*/200, /*chunk_words=*/8));
    machines.push_back(
        std::make_unique<Machine>(workloads.back().program, MachineConfig{}));
    raw.push_back(machines.back().get());
  }
  CommWorld world(raw);

  std::atomic<bool> stop{false};
  std::vector<CommWorld::RankStats> last(kRanks);
  std::uint64_t polls = 0;
  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t r = 0; r < kRanks; ++r) {
        const CommWorld::RankStats now = world.stats(r);
        // Counters are monotone under the single-writer rule.
        EXPECT_GE(now.sends, last[r].sends) << "rank " << r;
        EXPECT_GE(now.recvs, last[r].recvs) << "rank " << r;
        EXPECT_GE(now.words_sent, last[r].words_sent) << "rank " << r;
        EXPECT_GE(now.wait_retries, last[r].wait_retries) << "rank " << r;
        last[r] = now;
      }
      ++polls;
    }
  });
  ASSERT_TRUE(world.run_threaded());
  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls, 0u);
  for (std::size_t r = 0; r < kRanks; ++r) {
    const CommWorld::RankStats fin = world.stats(r);
    EXPECT_EQ(fin.sends, static_cast<std::uint64_t>(kIters)) << "rank " << r;
    EXPECT_EQ(fin.recvs, static_cast<std::uint64_t>(kIters)) << "rank " << r;
    EXPECT_EQ(fin.words_sent, static_cast<std::uint64_t>(kIters) * 8)
        << "rank " << r;
  }
}

}  // namespace
}  // namespace papirepro::sim
