#include "sim/cache.h"

#include <gtest/gtest.h>

namespace papirepro::sim {
namespace {

CacheConfig small_cache() {
  return {.size_bytes = 1024, .line_bytes = 64, .associativity = 2,
          .hit_latency = 0, .miss_latency = 10};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x100));
  EXPECT_TRUE(c.access(0x100));
  EXPECT_TRUE(c.access(0x13f));  // same 64B line as 0x100
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, NumSets) {
  EXPECT_EQ(small_cache().num_sets(), 8u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache c(small_cache());  // 8 sets, 2 ways, set stride = 64*8 = 512
  // Three lines mapping to the same set: only two fit.
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(512));
  EXPECT_FALSE(c.access(1024));  // evicts line 0 (LRU)
  EXPECT_FALSE(c.access(0));     // line 0 was evicted
  EXPECT_TRUE(c.access(1024));   // still resident
}

TEST(Cache, LruRefreshOnHit) {
  Cache c(small_cache());
  c.access(0);
  c.access(512);
  c.access(0);     // refresh line 0; 512 becomes LRU
  c.access(1024);  // evicts 512
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(512));
}

TEST(Cache, StreamingMissesEveryLine) {
  Cache c(small_cache());
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64) c.access(a);
  // Working set >> cache: every access a distinct line = all misses.
  EXPECT_EQ(c.stats().misses, c.stats().accesses);
}

TEST(Cache, SmallWorkingSetAllHitsAfterWarmup) {
  Cache c(small_cache());
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t a = 0; a < 1024; a += 64) c.access(a);
  }
  // 16 cold misses, then hits.
  EXPECT_EQ(c.stats().misses, 16u);
  EXPECT_EQ(c.stats().accesses, 64u);
}

TEST(Cache, PolluteInvalidatesLines) {
  Cache c(small_cache());
  for (std::uint64_t a = 0; a < 1024; a += 64) c.access(a);
  c.reset_stats();
  c.pollute(16);  // entire cache
  for (std::uint64_t a = 0; a < 1024; a += 64) c.access(a);
  EXPECT_GT(c.stats().misses, 0u);
}

TEST(Cache, MissRate) {
  Cache c(small_cache());
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
  CacheStats empty;
  EXPECT_DOUBLE_EQ(empty.miss_rate(), 0.0);
}

}  // namespace
}  // namespace papirepro::sim
