#include "sim/memory.h"

#include <gtest/gtest.h>

namespace papirepro::sim {
namespace {

TEST(Memory, ReadWriteRoundTrip) {
  Memory m;
  m.write_i64(0x1000, 42);
  EXPECT_EQ(m.read_i64(0x1000), 42);
  m.write_f64(0x2000, 3.25);
  EXPECT_DOUBLE_EQ(m.read_f64(0x2000), 3.25);
}

TEST(Memory, UntouchedReadsZero) {
  Memory m;
  EXPECT_EQ(m.read_i64(0xdead000), 0);
  EXPECT_DOUBLE_EQ(m.read_f64(0xbeef000), 0.0);
  // Reading does not allocate pages.
  EXPECT_EQ(m.pages_touched(), 0u);
}

TEST(Memory, PagesTouchedCountsDistinctPages) {
  Memory m;
  m.write_i64(0, 1);
  m.write_i64(8, 2);  // same page
  EXPECT_EQ(m.pages_touched(), 1u);
  m.write_i64(kPageSize, 3);  // next page
  EXPECT_EQ(m.pages_touched(), 2u);
  m.write_i64(10 * kPageSize, 4);
  EXPECT_EQ(m.pages_touched(), 3u);
  EXPECT_EQ(m.bytes_touched(), 3 * kPageSize);
}

TEST(Memory, SparseFarApartAddresses) {
  Memory m;
  m.write_i64(0x10, 7);
  m.write_i64(0x7fff'ffff'0000ULL, 9);
  EXPECT_EQ(m.read_i64(0x10), 7);
  EXPECT_EQ(m.read_i64(0x7fff'ffff'0000ULL), 9);
}

TEST(Memory, OverwriteSameWord) {
  Memory m;
  m.write_i64(64, 1);
  m.write_i64(64, -5);
  EXPECT_EQ(m.read_i64(64), -5);
  EXPECT_EQ(m.pages_touched(), 1u);
}

TEST(Memory, PageOfMath) {
  EXPECT_EQ(Memory::page_of(0), 0u);
  EXPECT_EQ(Memory::page_of(kPageSize - 1), 0u);
  EXPECT_EQ(Memory::page_of(kPageSize), 1u);
}

}  // namespace
}  // namespace papirepro::sim
