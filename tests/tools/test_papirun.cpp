#include "tools/papirun.h"

#include <gtest/gtest.h>

namespace papirepro::tools {
namespace {

TEST(Papirun, DefaultEventsOnDefaultPlatform) {
  PapirunRequest req;
  req.workload = "saxpy";
  req.n = 1000;
  auto result = papirun(req);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().multiplexed);
  EXPECT_GT(result.value().cycles, 0u);
  EXPECT_GT(result.value().instructions, 0u);
  ASSERT_EQ(result.value().counts.size(), 3u);
  EXPECT_EQ(result.value().counts[2].first, "PAPI_FP_OPS");
  EXPECT_EQ(result.value().counts[2].second, 2000);
  EXPECT_NE(result.value().report.find("papirun"), std::string::npos);
}

TEST(Papirun, AutoMultiplexWhenEventsExceedCounters) {
  PapirunRequest req;
  req.platform = "sim-x86";
  req.workload = "saxpy";
  req.n = 200'000;
  req.events = {"PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_LD_INS",
                "PAPI_SR_INS", "PAPI_FMA_INS", "PAPI_L1_DCM",
                "PAPI_BR_INS"};
  auto result = papirun(req);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().multiplexed);
  // FMA estimate close to n.
  for (const auto& [name, value] : result.value().counts) {
    if (name == "PAPI_FMA_INS") {
      EXPECT_NEAR(static_cast<double>(value), 200'000.0, 20'000.0);
    }
  }
}

TEST(Papirun, MultiplexDisabledFailsOnOvercommit) {
  PapirunRequest req;
  req.events = {"L1D_MISS", "L1D_ACCESS", "LD_RETIRED"};
  req.allow_multiplex = false;
  EXPECT_EQ(papirun(req).error(), Error::kConflict);
}

TEST(Papirun, AlphaEstimationMode) {
  PapirunRequest req;
  req.platform = "sim-alpha";
  req.workload = "saxpy";
  req.n = 200'000;
  req.use_estimation = true;
  req.events = {"PAPI_TOT_INS", "PAPI_FP_OPS"};
  auto result = papirun(req);
  ASSERT_TRUE(result.ok());
  for (const auto& [name, value] : result.value().counts) {
    if (name == "PAPI_FP_OPS") {
      EXPECT_NEAR(static_cast<double>(value), 400'000.0, 50'000.0);
    }
  }
}

TEST(Papirun, RejectsUnknownNames) {
  PapirunRequest bad_platform;
  bad_platform.platform = "sim-vax";
  EXPECT_EQ(papirun(bad_platform).error(), Error::kInvalid);

  PapirunRequest bad_workload;
  bad_workload.workload = "fibonacci";
  EXPECT_EQ(papirun(bad_workload).error(), Error::kInvalid);

  PapirunRequest bad_event;
  bad_event.events = {"PAPI_NOPE"};
  EXPECT_EQ(papirun(bad_event).error(), Error::kNoEvent);
}

TEST(Papirun, EveryPlatformRunsTheBasics) {
  for (const char* platform :
       {"sim-x86", "sim-power3", "sim-ia64", "sim-alpha"}) {
    PapirunRequest req;
    req.platform = platform;
    req.workload = "branchy";
    req.n = 5'000;
    auto result = papirun(req);
    ASSERT_TRUE(result.ok()) << platform;
    EXPECT_GT(result.value().counts[0].second, 0) << platform;
  }
}

}  // namespace
}  // namespace papirepro::tools
