#include "tools/dynaprof.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace papirepro::tools {
namespace {

TEST(Instrumenter, InsertsEntryAndExitProbes) {
  const sim::Workload w = sim::make_tight_call(10, 2);
  const sim::Program instrumented =
      instrument_program(w.program, {"work"});
  // Original work: 2 fmadds + ret (3 instructions). Instrumented adds
  // entry + exit probes.
  const sim::Function* work = instrumented.find_function("work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(instrumented.at(work->entry).op, sim::Opcode::kProbe);
  EXPECT_EQ(instrumented.size(), w.program.size() + 2);
}

TEST(Instrumenter, InstrumentedProgramComputesSameResult) {
  const sim::Workload w = sim::make_matmul(8);
  const sim::Program instrumented = instrument_program(w.program, {});

  sim::Machine plain(w.program, {});
  w.setup(plain);
  plain.run();
  sim::Machine probed(instrumented, {});
  w.setup(probed);
  probed.run();
  EXPECT_TRUE(probed.halted());
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(plain.memory().read_f64(0x18000000 + 8 * i),
                     probed.memory().read_f64(0x18000000 + 8 * i));
  }
}

TEST(Instrumenter, BranchTargetsRemappedAcrossInsertions) {
  const sim::Workload w = sim::make_tight_call(100, 1);
  const sim::Program instrumented = instrument_program(w.program, {});
  sim::Machine m(instrumented, {});
  m.run();
  EXPECT_TRUE(m.halted());  // would loop forever / trap on bad targets
}

TEST(Instrumenter, CallsHitEntryProbe) {
  const sim::Workload w = sim::make_tight_call(5, 1);
  const sim::Program instrumented =
      instrument_program(w.program, {"work"});
  sim::Machine m(instrumented, {});
  int entries = 0, exits = 0;
  m.set_probe_handler([&](std::int64_t id, sim::Machine&) {
    if (id % 2 == 0) ++entries;
    else ++exits;
  });
  m.run();
  EXPECT_EQ(entries, 5);
  EXPECT_EQ(exits, 5);
}

TEST(Dynaprof, PerFunctionMetrics) {
  DynaprofOptions options;
  options.functions = {"work", "main"};
  options.metrics = {papi::EventId::preset(papi::Preset::kFmaIns),
                     papi::EventId::preset(papi::Preset::kTotCyc)};
  DynaprofSession session(sim::make_tight_call(50, 4), pmu::sim_x86(),
                          options);
  ASSERT_TRUE(session.run().ok());

  const FunctionStats* work = nullptr;
  const FunctionStats* main_fn = nullptr;
  for (const FunctionStats& fs : session.results()) {
    if (fs.name == "work") work = &fs;
    if (fs.name == "main") main_fn = &fs;
  }
  ASSERT_NE(work, nullptr);
  ASSERT_NE(main_fn, nullptr);
  EXPECT_EQ(work->calls, 50u);
  EXPECT_EQ(main_fn->calls, 1u);
  // All 200 FMAs belong to work, inclusively and exclusively.
  EXPECT_EQ(work->inclusive[0], 200);
  EXPECT_EQ(work->exclusive[0], 200);
  // main's inclusive FMA count covers its child; exclusive is zero.
  EXPECT_EQ(main_fn->inclusive[0], 200);
  EXPECT_EQ(main_fn->exclusive[0], 0);
  // Cycles: work exclusive <= work inclusive <= main inclusive.
  EXPECT_LE(work->exclusive[1], work->inclusive[1]);
  EXPECT_LE(work->inclusive[1], main_fn->inclusive[1]);
}

TEST(Dynaprof, MultiphaseAttributesPhases) {
  DynaprofOptions options;
  options.metrics = {papi::EventId::preset(papi::Preset::kFmaIns)};
  DynaprofSession session(sim::make_multiphase(4, 1000), pmu::sim_x86(),
                          options);
  ASSERT_TRUE(session.run().ok());
  for (const FunctionStats& fs : session.results()) {
    if (fs.name == "phase_fp") {
      EXPECT_EQ(fs.calls, 4u);
      EXPECT_EQ(fs.inclusive[0], 16'000);  // 4 reps * 1000 * 4 FMAs
    }
    if (fs.name == "phase_mem") {
      EXPECT_EQ(fs.inclusive[0], 0);
    }
  }
}

TEST(Dynaprof, ProbeOverheadShowsUpInMachine) {
  // Probing a tiny hot function at every call is the pathological case
  // from Section 4: overhead must be substantial.
  DynaprofOptions options;
  options.functions = {"work"};
  options.metrics = {papi::EventId::preset(papi::Preset::kTotCyc)};
  DynaprofSession session(sim::make_tight_call(2000, 2), pmu::sim_x86(),
                          options);
  ASSERT_TRUE(session.run().ok());
  const auto& m = session.machine();
  const double frac = static_cast<double>(m.overhead_cycles()) /
                      static_cast<double>(m.cycles());
  EXPECT_GT(frac, 0.5);  // reads dominate a 2-FMA function
}

TEST(Dynaprof, AttachMidRunSkipsEarlyCalls) {
  // Attach after roughly half the run: only the later calls are
  // profiled — "attach to a running executable ... without requiring
  // any source code changes or recompilation or even restarting".
  DynaprofOptions options;
  options.functions = {"work"};
  options.metrics = {papi::EventId::preset(papi::Preset::kFmaIns)};
  // tight_call(100, 2): each call is ~5 instructions incl. loop.
  options.attach_after_instructions = 300;
  DynaprofSession session(sim::make_tight_call(100, 2), pmu::sim_x86(),
                          options);
  ASSERT_TRUE(session.run().ok());
  const FunctionStats* work = nullptr;
  for (const FunctionStats& fs : session.results()) {
    if (fs.name == "work") work = &fs;
  }
  ASSERT_NE(work, nullptr);
  EXPECT_GT(work->calls, 10u);
  EXPECT_LT(work->calls, 90u);  // early calls were not profiled
  EXPECT_EQ(work->inclusive[0], static_cast<long long>(2 * work->calls));
}

TEST(Dynaprof, AttachZeroProfilesEverything) {
  DynaprofOptions options;
  options.functions = {"work"};
  options.attach_after_instructions = 0;
  DynaprofSession session(sim::make_tight_call(25, 1), pmu::sim_x86(),
                          options);
  ASSERT_TRUE(session.run().ok());
  for (const FunctionStats& fs : session.results()) {
    if (fs.name == "work") EXPECT_EQ(fs.calls, 25u);
  }
}

TEST(Dynaprof, ReportListsInstrumentedFunctions) {
  DynaprofOptions options;
  DynaprofSession session(sim::make_tight_call(10, 1), pmu::sim_x86(),
                          options);
  ASSERT_TRUE(session.run().ok());
  const std::string report = session.report();
  EXPECT_NE(report.find("work"), std::string::npos);
  EXPECT_NE(report.find("main"), std::string::npos);
  EXPECT_NE(report.find("PAPI_TOT_CYC"), std::string::npos);
}

}  // namespace
}  // namespace papirepro::tools
