// Property sweep over the dynaprof instrumenter: for EVERY registry
// workload, the instrumented program must (a) still halt, (b) retire
// exactly `original + probes_fired` instructions, and (c) raise the same
// deterministic event counts — instrumentation must never change what
// the program computes or how its non-probe instructions count.
#include <gtest/gtest.h>

#include "sim/workload_registry.h"
#include "test_util.h"
#include "tools/dynaprof.h"

namespace papirepro::tools {
namespace {

using papirepro::test::SignalCounter;

class InstrumentEveryWorkload
    : public ::testing::TestWithParam<std::string_view> {};

TEST_P(InstrumentEveryWorkload, PreservesBehaviour) {
  auto w = sim::make_workload(GetParam(), 0);
  ASSERT_TRUE(w.has_value());

  sim::Machine plain(w->program, {});
  if (w->setup) w->setup(plain);
  SignalCounter plain_counts(plain);
  const sim::RunResult plain_run = plain.run(50'000'000);
  ASSERT_TRUE(plain_run.halted);

  const sim::Program instrumented = instrument_program(w->program, {});
  sim::Machine probed(instrumented, {});
  if (w->setup) w->setup(probed);
  std::uint64_t probes_fired = 0;
  probed.set_probe_handler(
      [&probes_fired](std::int64_t, sim::Machine&) { ++probes_fired; });
  SignalCounter probed_counts(probed);
  const sim::RunResult probed_run = probed.run(100'000'000);
  ASSERT_TRUE(probed_run.halted);

  // (b) instruction accounting: probes are the only additions.
  EXPECT_EQ(probed_run.instructions,
            plain_run.instructions + probes_fired);
  EXPECT_GT(probes_fired, 0u);

  // (c) deterministic event classes unchanged.
  using sim::SimEvent;
  for (SimEvent e : {SimEvent::kFpAdd, SimEvent::kFpMul, SimEvent::kFpFma,
                     SimEvent::kFpCvt, SimEvent::kLoadIns,
                     SimEvent::kStoreIns, SimEvent::kBrIns,
                     SimEvent::kBrTaken}) {
    EXPECT_EQ(probed_counts[e], plain_counts[e])
        << GetParam() << " " << sim_event_name(e);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, InstrumentEveryWorkload,
                         ::testing::ValuesIn(sim::workload_names()),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace papirepro::tools
