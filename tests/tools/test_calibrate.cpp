#include "tools/calibrate.h"

#include <gtest/gtest.h>

namespace papirepro::tools {
namespace {

TEST(Calibrate, DirectCountsAreExactOnX86) {
  auto rows = calibrate_workload(sim::make_saxpy(10'000), pmu::sim_x86());
  ASSERT_TRUE(rows.ok());
  ASSERT_GE(rows.value().size(), 4u);  // FpOps, FmaIns, Ld, Sr, Br
  for (const CalibrationRow& r : rows.value()) {
    EXPECT_DOUBLE_EQ(r.measured, r.expected) << r.event;
    EXPECT_DOUBLE_EQ(r.rel_error, 0.0) << r.event;
  }
}

TEST(Calibrate, WholeRunInstrumentationOverheadIsSmall) {
  auto rows = calibrate_workload(sim::make_saxpy(100'000), pmu::sim_x86());
  ASSERT_TRUE(rows.ok());
  for (const CalibrationRow& r : rows.value()) {
    // One start/stop pair + one read: negligible on a long run.
    EXPECT_LT(r.overhead_fraction, 0.02) << r.event;
  }
}

TEST(Calibrate, FineGrainedReadsInflateOverhead) {
  CalibrationOptions fine;
  fine.read_interval_cycles = 10'000;
  auto coarse_rows =
      calibrate_workload(sim::make_saxpy(100'000), pmu::sim_x86());
  auto fine_rows =
      calibrate_workload(sim::make_saxpy(100'000), pmu::sim_x86(), fine);
  ASSERT_TRUE(coarse_rows.ok());
  ASSERT_TRUE(fine_rows.ok());
  EXPECT_GT(fine_rows.value()[0].overhead_fraction,
            5 * coarse_rows.value()[0].overhead_fraction);
  // Direct counting stays exact even under heavy reading.
  EXPECT_DOUBLE_EQ(fine_rows.value()[0].rel_error, 0.0);
}

TEST(Calibrate, EstimationConvergesOnAlpha) {
  CalibrationOptions options;
  options.use_estimation = true;
  auto rows = calibrate_workload(sim::make_saxpy(300'000),
                                 pmu::sim_alpha(), options);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows.value().empty());
  for (const CalibrationRow& r : rows.value()) {
    EXPECT_LT(r.rel_error, 0.12) << r.event << " did not converge";
    // The DADD finding: sampling costs only one-to-two percent.
    EXPECT_LT(r.overhead_fraction, 0.03) << r.event;
  }
}

TEST(Calibrate, EstimationDivergesOnShortRun) {
  CalibrationOptions options;
  options.use_estimation = true;
  auto rows = calibrate_workload(sim::make_saxpy(300), pmu::sim_alpha(),
                                 options);
  ASSERT_TRUE(rows.ok());
  bool some_large_error = false;
  for (const CalibrationRow& r : rows.value()) {
    if (r.rel_error > 0.10) some_large_error = true;
  }
  EXPECT_TRUE(some_large_error)
      << "short-run estimates should not have converged";
}

TEST(Calibrate, SkipsUnavailablePresets) {
  // Alpha without estimation can only calibrate what its 2 aggregate
  // counters express: most checks are skipped, not errored.
  auto rows =
      calibrate_workload(sim::make_saxpy(10'000), pmu::sim_alpha());
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.value().empty());
}

TEST(Calibrate, RenderTable) {
  auto rows = calibrate_workload(sim::make_saxpy(1'000), pmu::sim_x86());
  ASSERT_TRUE(rows.ok());
  const std::string table = render_calibration(rows.value());
  EXPECT_NE(table.find("PAPI_FP_OPS"), std::string::npos);
  EXPECT_NE(table.find("saxpy"), std::string::npos);
  EXPECT_NE(table.find("rel_err"), std::string::npos);
}

TEST(Calibrate, MatmulExactOnPower3) {
  auto rows =
      calibrate_workload(sim::make_matmul(16), pmu::sim_power3());
  ASSERT_TRUE(rows.ok());
  for (const CalibrationRow& r : rows.value()) {
    EXPECT_DOUBLE_EQ(r.rel_error, 0.0) << r.event;
  }
}

}  // namespace
}  // namespace papirepro::tools
