#include "tools/vprof.h"

#include <gtest/gtest.h>

#include "core/eventset.h"
#include "test_util.h"

namespace papirepro::tools {
namespace {

using papirepro::test::SimFixture;

/// Profiles L1 D-cache misses of the pointer chase on `platform` and
/// returns (buffer, program) attribution accuracy for the chase load
/// (instruction index 3).
AttributionAccuracy profile_chase(const pmu::PlatformDescription& platform,
                                  bool prefer_precise = true) {
  SimFixture f(sim::make_pointer_chase(1024, 80'000, 11), platform,
               {.charge_costs = false});
  papi::EventSet& set = f.new_set();
  EXPECT_TRUE(set.add_preset(papi::Preset::kL1Dcm).ok());
  papi::ProfileBuffer buf(sim::kTextBase,
                          f.workload.program.size() * sim::kInstrBytes);
  EXPECT_TRUE(set.profil(buf, papi::EventId::preset(papi::Preset::kL1Dcm),
                         400, prefer_precise)
                  .ok());
  EXPECT_TRUE(set.start().ok());
  f.machine->run();
  EXPECT_TRUE(set.stop().ok());
  return attribution_accuracy(buf, f.workload.program, 3);
}

TEST(Vprof, EarPlatformAttributesExactly) {
  const AttributionAccuracy acc = profile_chase(pmu::sim_ia64());
  ASSERT_GT(acc.total_samples, 50u);
  EXPECT_GT(acc.exact, 0.99);
}

TEST(Vprof, OutOfOrderPlatformSkidsAcrossInstructions) {
  const AttributionAccuracy acc = profile_chase(pmu::sim_x86());
  ASSERT_GT(acc.total_samples, 50u);
  // "several instructions or even basic blocks removed": exact
  // attribution collapses under skid.
  EXPECT_LT(acc.exact, 0.6);
  // But function-level attribution survives (the whole loop is main).
  EXPECT_GT(acc.same_function, 0.9);
}

TEST(Vprof, PreferPreciseFallsBackWhenUnsupported) {
  // prefer_precise on a skid platform changes nothing (no EAR data).
  const AttributionAccuracy with = profile_chase(pmu::sim_x86(), true);
  const AttributionAccuracy without = profile_chase(pmu::sim_x86(), false);
  EXPECT_EQ(with.exact, without.exact);
}

TEST(Vprof, CorrelateLinesFindsHotLine) {
  SimFixture f(sim::make_saxpy(50'000), pmu::sim_power3(),
               {.charge_costs = false});
  papi::EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(papi::Preset::kTotIns).ok());
  papi::ProfileBuffer buf(sim::kTextBase,
                          f.workload.program.size() * sim::kInstrBytes);
  ASSERT_TRUE(
      set.profil(buf, papi::EventId::preset(papi::Preset::kTotIns), 500)
          .ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());

  const auto lines = correlate_lines(buf, f.workload.program);
  ASSERT_FALSE(lines.empty());
  // saxpy body is lines 2-3; line 1 is the prologue.
  EXPECT_NE(lines[0].line, 1u);
  EXPECT_GT(lines[0].fraction, 0.3);

  const auto funcs = correlate_functions(buf, f.workload.program);
  ASSERT_EQ(funcs.size(), 1u);
  EXPECT_EQ(funcs[0].name, "main");
  EXPECT_DOUBLE_EQ(funcs[0].fraction, 1.0);
}

TEST(Vprof, AnnotatedListing) {
  SimFixture f(sim::make_saxpy(20'000), pmu::sim_power3(),
               {.charge_costs = false});
  papi::EventSet& set = f.new_set();
  ASSERT_TRUE(set.add_preset(papi::Preset::kTotIns).ok());
  papi::ProfileBuffer buf(sim::kTextBase,
                          f.workload.program.size() * sim::kInstrBytes);
  ASSERT_TRUE(
      set.profil(buf, papi::EventId::preset(papi::Preset::kTotIns), 500)
          .ok());
  ASSERT_TRUE(set.start().ok());
  f.machine->run();
  ASSERT_TRUE(set.stop().ok());
  const std::string listing = render_annotated(buf, f.workload.program);
  EXPECT_NE(listing.find("main+"), std::string::npos);
  EXPECT_NE(listing.find("line"), std::string::npos);
}

TEST(Vprof, EmptyBufferHandled) {
  papi::ProfileBuffer buf(sim::kTextBase, 64);
  const sim::Workload w = sim::make_saxpy(10);
  EXPECT_TRUE(correlate_lines(buf, w.program).empty());
  EXPECT_TRUE(correlate_functions(buf, w.program).empty());
  const AttributionAccuracy acc = attribution_accuracy(buf, w.program, 0);
  EXPECT_EQ(acc.total_samples, 0u);
}

}  // namespace
}  // namespace papirepro::tools
