// papicollect end to end: a rank population counts on real threads
// while the collector aggregates their published snapshots — the final
// cluster reduction must cover every rank, the per-rank view must match
// the ranks' own final counts, and the telemetry must prove no counting
// thread was ever stopped to be sampled.  Suite name is Aggregation* so
// the CI TSan shard covers the collector-thread / rank-thread overlap.
#include <gtest/gtest.h>

#include <algorithm>

#include "tools/papicollect.h"

namespace {

using namespace papirepro;

TEST(AggregationPapicollect, RankPopulationReducesEndToEnd) {
  tools::PapicollectRequest request;
  request.ranks = 8;
  request.iters = 30;
  request.work = 1'000;
  request.ranks_per_node = 4;
  request.top_n = 3;
  auto result = tools::papicollect(request);
  ASSERT_TRUE(result.ok());
  const tools::PapicollectResult& r = result.value();

  // Every rank contributed to the final reduction, none aged out.
  EXPECT_EQ(r.cluster.ranks_live, 8u);
  EXPECT_EQ(r.cluster.ranks_stale, 0u);
  ASSERT_EQ(r.cluster.num_metrics, 2u);
  for (std::uint32_t m = 0; m < 2; ++m) {
    EXPECT_EQ(r.cluster.metrics[m].count, 8u);
    EXPECT_GT(r.cluster.metrics[m].min, 0);
    EXPECT_GE(r.cluster.metrics[m].max, r.cluster.metrics[m].min);
  }
  // The imbalanced rank (nranks/2) must top the cycle ranking with a
  // visible margin.
  ASSERT_EQ(r.top.size(), 3u);
  EXPECT_EQ(r.top[0].rank, 4u);
  EXPECT_GT(r.top[0].value, r.top[1].value);

  // At least the final forced poll happened; frames arrived cleanly.
  EXPECT_GE(r.polls, 1u);
  EXPECT_GT(r.collector_stats.frames, 0u);
  EXPECT_EQ(r.collector_stats.decode_errors, 0u);
  EXPECT_EQ(r.collector_stats.ranks_dropped, 0u);

  // The out-of-process view (seqlock region) agrees with the direct
  // reduction.
  EXPECT_EQ(r.region.ranks_live, r.cluster.ranks_live);
  EXPECT_EQ(r.region.metrics[0].sum, r.cluster.metrics[0].sum);
  EXPECT_EQ(r.region.metrics[1].max, r.cluster.metrics[1].max);

  // One start and one stop per rank: the collector never stopped a
  // counting thread to sample it.
  EXPECT_EQ(r.total_starts, 8u);
  EXPECT_EQ(r.total_stops, 8u);

  // Report mentions the aggregate machinery (smoke, not format-lock).
  EXPECT_NE(r.report.find("cluster reduction"), std::string::npos);
  EXPECT_NE(r.report.find("PAPI_TOT_CYC"), std::string::npos);
}

TEST(AggregationPapicollect, RequestValidation) {
  tools::PapicollectRequest request;
  request.ranks = 0;
  EXPECT_FALSE(tools::papicollect(request).ok());
  request.ranks = 4;
  request.platform = "no-such-platform";
  EXPECT_FALSE(tools::papicollect(request).ok());
  request.platform = "sim-x86";
  request.iters = 0;
  EXPECT_FALSE(tools::papicollect(request).ok());
}

}  // namespace
