#include "tools/tracer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace papirepro::tools {
namespace {

using papirepro::test::SimFixture;

TEST(Tracer, RecordsMultiMetricIntervals) {
  SimFixture f(sim::make_saxpy(200'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventTracer tracer(
      *f.library,
      {papi::EventId::preset(papi::Preset::kFmaIns),
       papi::EventId::preset(papi::Preset::kLdIns)},
      /*interval_cycles=*/20'000);
  ASSERT_TRUE(tracer.start().ok());
  f.machine->run();
  ASSERT_TRUE(tracer.stop().ok());

  ASSERT_GT(tracer.intervals().size(), 10u);
  long long total_fma = 0, total_ld = 0;
  std::uint64_t prev_end = 0;
  for (const auto& iv : tracer.intervals()) {
    EXPECT_GE(iv.start_usec, prev_end == 0 ? 0 : prev_end);
    EXPECT_GE(iv.end_usec, iv.start_usec);
    prev_end = iv.end_usec;
    total_fma += iv.deltas[0];
    total_ld += iv.deltas[1];
  }
  // Interval deltas sum to the whole-run counts.
  EXPECT_EQ(total_fma, 200'000);
  EXPECT_EQ(total_ld, 400'000);
}

TEST(Tracer, MultiplexesWhenMetricsExceedCounters) {
  SimFixture f(sim::make_saxpy(300'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventTracer tracer(
      *f.library,
      {papi::EventId::preset(papi::Preset::kTotCyc),
       papi::EventId::preset(papi::Preset::kTotIns),
       papi::EventId::preset(papi::Preset::kLdIns),
       papi::EventId::preset(papi::Preset::kSrIns),
       papi::EventId::preset(papi::Preset::kFmaIns),
       papi::EventId::preset(papi::Preset::kL1Dcm)},
      /*interval_cycles=*/50'000);
  ASSERT_TRUE(tracer.start().ok());
  f.machine->run();
  ASSERT_TRUE(tracer.stop().ok());
  long long total_fma = 0;
  for (const auto& iv : tracer.intervals()) total_fma += iv.deltas[4];
  EXPECT_NEAR(static_cast<double>(total_fma), 300'000.0, 30'000.0);
}

TEST(Tracer, CapturesProgramMarkers) {
  // Build a program that emits markers between phases.
  sim::ProgramBuilder b;
  b.begin_function("main");
  b.li(1, 0);
  b.li(2, 20'000);
  b.probe(1000);  // marker 0
  auto l1 = b.new_label();
  b.bind(l1);
  b.fmadd(3, 4, 5);
  b.addi(1, 1, 1);
  b.blt(1, 2, l1);
  b.probe(1001);  // marker 1
  b.li(1, 0);
  auto l2 = b.new_label();
  b.bind(l2);
  b.addi(1, 1, 1);
  b.blt(1, 2, l2);
  b.probe(1002);  // marker 2
  b.halt();
  b.end_function();
  sim::Workload w;
  w.name = "marked";
  w.program = std::move(b).build();

  SimFixture f(std::move(w), pmu::sim_x86(), {.charge_costs = false});
  EventTracer tracer(*f.library,
                     {papi::EventId::preset(papi::Preset::kFpOps)},
                     /*interval_cycles=*/5'000, f.machine.get());
  ASSERT_TRUE(tracer.start().ok());
  f.machine->run();
  ASSERT_TRUE(tracer.stop().ok());

  ASSERT_EQ(tracer.markers().size(), 3u);
  EXPECT_EQ(tracer.markers()[0].id, 0);
  EXPECT_EQ(tracer.markers()[1].id, 1);
  EXPECT_EQ(tracer.markers()[2].id, 2);
  EXPECT_LE(tracer.markers()[0].usec, tracer.markers()[1].usec);
  // FP activity happens only between markers 0 and 1.
  long long fp_before = 0, fp_after = 0;
  for (const auto& iv : tracer.intervals()) {
    if (iv.end_usec <= tracer.markers()[1].usec) fp_before += iv.deltas[0];
    // +2us slack: timestamps are truncated to microseconds, so the
    // interval starting "at" the marker may begin just before it.
    if (iv.start_usec > tracer.markers()[1].usec + 2) {
      fp_after += iv.deltas[0];
    }
  }
  EXPECT_GT(fp_before, 30'000);
  EXPECT_EQ(fp_after, 0);
}

TEST(Tracer, ChainsExistingProbeHandler) {
  sim::ProgramBuilder b;
  b.begin_function("main");
  b.probe(5);     // below marker base: app probe
  b.probe(1003);  // marker 3
  b.halt();
  b.end_function();
  sim::Workload w;
  w.name = "probes";
  w.program = std::move(b).build();
  SimFixture f(std::move(w), pmu::sim_x86(), {.charge_costs = false});

  int app_probe_calls = 0;
  f.machine->set_probe_handler(
      [&](std::int64_t, sim::Machine&) { ++app_probe_calls; });
  EventTracer tracer(*f.library,
                     {papi::EventId::preset(papi::Preset::kTotIns)},
                     1'000, f.machine.get());
  ASSERT_TRUE(tracer.start().ok());
  f.machine->run();
  ASSERT_TRUE(tracer.stop().ok());
  EXPECT_EQ(app_probe_calls, 2);  // both probes still reach the app
  ASSERT_EQ(tracer.markers().size(), 1u);
  EXPECT_EQ(tracer.markers()[0].id, 3);
  // Handler restored after stop.
  EXPECT_TRUE(static_cast<bool>(f.machine->probe_handler()));
}

TEST(Tracer, TimelineAndCsvRender) {
  SimFixture f(sim::make_multiphase(2, 10'000), pmu::sim_x86(),
               {.charge_costs = false});
  EventTracer tracer(*f.library,
                     {papi::EventId::preset(papi::Preset::kFpOps)},
                     10'000);
  ASSERT_TRUE(tracer.start().ok());
  f.machine->run();
  ASSERT_TRUE(tracer.stop().ok());
  const std::string timeline = tracer.render_timeline();
  EXPECT_NE(timeline.find("PAPI_FP_OPS"), std::string::npos);
  EXPECT_NE(timeline.find("["), std::string::npos);
  const std::string csv = tracer.to_csv();
  EXPECT_NE(csv.find("start_usec,end_usec,PAPI_FP_OPS"),
            std::string::npos);
}

TEST(Tracer, StateErrors) {
  SimFixture f(sim::make_saxpy(100), pmu::sim_x86());
  EventTracer tracer(*f.library, {}, 1'000);
  EXPECT_EQ(tracer.start().error(), Error::kInvalid);  // no metrics
  EventTracer tracer2(*f.library,
                      {papi::EventId::preset(papi::Preset::kTotIns)},
                      1'000);
  EXPECT_EQ(tracer2.stop().error(), Error::kNotRunning);
  ASSERT_TRUE(tracer2.start().ok());
  EXPECT_EQ(tracer2.start().error(), Error::kIsRunning);
  ASSERT_TRUE(tracer2.stop().ok());
}

}  // namespace
}  // namespace papirepro::tools
