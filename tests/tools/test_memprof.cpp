#include "tools/memprof.h"

#include <gtest/gtest.h>

namespace papirepro::tools {
namespace {

TEST(MemProf, AttributesAccessesToRegions) {
  sim::Workload w = sim::make_saxpy(1'000);
  sim::Machine m(w.program, {});
  w.setup(m);
  MemoryProfiler prof(m, w.regions);
  m.run();

  const RegionStats* x = prof.find("x");
  const RegionStats* y = prof.find("y");
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(x->accesses, 1'000u);  // one load per iteration
  EXPECT_EQ(y->accesses, 2'000u);  // load + store per iteration
  const RegionStats* other = prof.find("<other>");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->accesses, 0u);
}

TEST(MemProf, NaiveMatmulBlamesB) {
  // The classic answer "which array misses?": naive ijk walks B down
  // columns (stride 8n), so B dominates the L1 misses.
  sim::Workload w = sim::make_matmul(64);
  sim::MachineConfig config;
  config.l1d = {.size_bytes = 8 * 1024, .line_bytes = 64,
                .associativity = 2, .miss_latency = 8};
  sim::Machine m(w.program, config);
  w.setup(m);
  MemoryProfiler prof(m, w.regions);
  m.run();

  const RegionStats* a = prof.find("A");
  const RegionStats* b = prof.find("B");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GT(b->l1_misses, 5 * a->l1_misses);
  EXPECT_GT(b->l1_miss_rate(), 0.5);
}

TEST(MemProf, OutsideRegionFallsToOther) {
  sim::Workload w = sim::make_saxpy(100);
  sim::Machine m(w.program, {});
  w.setup(m);
  // Register only "x"; y traffic must land in <other>.
  MemoryProfiler prof(m, {w.regions[0]});
  m.run();
  EXPECT_EQ(prof.find("x")->accesses, 100u);
  EXPECT_EQ(prof.find("<other>")->accesses, 200u);
}

TEST(MemProf, TlbMissesAttributed) {
  sim::Workload w = sim::make_pointer_chase(4096, 40'000, 3);
  sim::Machine m(w.program, {});
  w.setup(m);
  MemoryProfiler prof(m, w.regions);
  m.run();
  const RegionStats* nodes = prof.find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_GT(nodes->tlb_misses, 1'000u);
  EXPECT_GT(nodes->l2_misses, 0u);
}

TEST(MemProf, ResetClearsCounts) {
  sim::Workload w = sim::make_saxpy(100);
  sim::Machine m(w.program, {});
  w.setup(m);
  MemoryProfiler prof(m, w.regions);
  m.run(200);
  EXPECT_GT(prof.find("x")->accesses + prof.find("y")->accesses, 0u);
  prof.reset();
  EXPECT_EQ(prof.find("x")->accesses, 0u);
}

TEST(MemProf, ReportTable) {
  sim::Workload w = sim::make_saxpy(500);
  sim::Machine m(w.program, {});
  w.setup(m);
  MemoryProfiler prof(m, w.regions);
  m.run();
  const std::string report = prof.report();
  EXPECT_NE(report.find("object"), std::string::npos);
  EXPECT_NE(report.find("x"), std::string::npos);
  EXPECT_NE(report.find("y"), std::string::npos);
}

}  // namespace
}  // namespace papirepro::tools
