#include "tools/perfometer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace papirepro::tools {
namespace {

using papirepro::test::SimFixture;

TEST(Perfometer, TracesMetricOverTime) {
  SimFixture f(sim::make_saxpy(200'000), pmu::sim_x86(),
               {.charge_costs = false});
  Perfometer meter(*f.library,
                   papi::EventId::preset(papi::Preset::kFpOps),
                   /*interval_cycles=*/20'000);
  ASSERT_TRUE(meter.start().ok());
  f.machine->run();
  ASSERT_TRUE(meter.stop().ok());

  ASSERT_GT(meter.trace().size(), 10u);
  // Cumulative value is monotone; final equals 2n.
  long long prev = 0;
  for (const auto& p : meter.trace()) {
    EXPECT_GE(p.value, prev);
    prev = p.value;
  }
  EXPECT_EQ(meter.trace().back().value, 400'000);
}

TEST(Perfometer, Fig2ShapeFpBurstsAlternateWithQuiet) {
  // The multiphase program alternates FP-heavy and FP-free phases: the
  // FLOPS rate trace must show both near-peak and near-zero intervals.
  SimFixture f(sim::make_multiphase(6, 20'000), pmu::sim_x86(),
               {.charge_costs = false});
  Perfometer meter(*f.library,
                   papi::EventId::preset(papi::Preset::kFpOps),
                   /*interval_cycles=*/10'000);
  ASSERT_TRUE(meter.start().ok());
  f.machine->run();
  ASSERT_TRUE(meter.stop().ok());

  double peak = 0;
  for (const auto& p : meter.trace()) {
    peak = std::max(peak, p.rate_per_sec);
  }
  ASSERT_GT(peak, 0);
  int high = 0, low = 0;
  for (const auto& p : meter.trace()) {
    if (p.rate_per_sec > 0.5 * peak) ++high;
    if (p.rate_per_sec < 0.05 * peak) ++low;
  }
  EXPECT_GT(high, 5);
  EXPECT_GT(low, 5);
}

TEST(Perfometer, SelectMetricOnlyWhileStopped) {
  SimFixture f(sim::make_saxpy(10'000), pmu::sim_x86());
  Perfometer meter(*f.library,
                   papi::EventId::preset(papi::Preset::kFpOps), 5'000);
  ASSERT_TRUE(meter.start().ok());
  EXPECT_EQ(meter
                .select_metric(papi::EventId::preset(papi::Preset::kL1Dcm))
                .error(),
            Error::kIsRunning);
  ASSERT_TRUE(meter.stop().ok());
  EXPECT_TRUE(
      meter.select_metric(papi::EventId::preset(papi::Preset::kL1Dcm))
          .ok());
}

TEST(Perfometer, CsvTraceFile) {
  SimFixture f(sim::make_saxpy(50'000), pmu::sim_x86(),
               {.charge_costs = false});
  Perfometer meter(*f.library,
                   papi::EventId::preset(papi::Preset::kFmaIns), 10'000);
  ASSERT_TRUE(meter.start().ok());
  f.machine->run();
  ASSERT_TRUE(meter.stop().ok());
  const std::string csv = meter.to_csv();
  EXPECT_NE(csv.find("usec,value,rate_per_sec"), std::string::npos);
  // One line per point plus header.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), meter.trace().size() + 1);
}

TEST(Perfometer, AsciiRenderNonEmpty) {
  SimFixture f(sim::make_multiphase(3, 10'000), pmu::sim_x86(),
               {.charge_costs = false});
  Perfometer meter(*f.library,
                   papi::EventId::preset(papi::Preset::kFpOps), 10'000);
  ASSERT_TRUE(meter.start().ok());
  f.machine->run();
  ASSERT_TRUE(meter.stop().ok());
  const std::string chart = meter.render_ascii(60, 8);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find("> time"), std::string::npos);
}

TEST(Perfometer, AttachesMidRun) {
  // perfometer can attach to an already-running application: start the
  // meter after part of the run; the trace covers only what followed.
  SimFixture f(sim::make_saxpy(100'000), pmu::sim_x86(),
               {.charge_costs = false});
  f.machine->run(300'000);  // application already running
  Perfometer meter(*f.library,
                   papi::EventId::preset(papi::Preset::kFmaIns), 10'000);
  ASSERT_TRUE(meter.start().ok());
  f.machine->run();
  ASSERT_TRUE(meter.stop().ok());
  ASSERT_FALSE(meter.trace().empty());
  // Counted FMAs < total: only the post-attach portion was observed.
  EXPECT_LT(meter.trace().back().value, 100'000);
  EXPECT_GT(meter.trace().back().value, 10'000);
}

TEST(Perfometer, RestartProducesFreshTrace) {
  SimFixture f(sim::make_saxpy(100'000), pmu::sim_x86(),
               {.charge_costs = false});
  Perfometer meter(*f.library,
                   papi::EventId::preset(papi::Preset::kFmaIns), 10'000);
  ASSERT_TRUE(meter.start().ok());
  f.machine->run(100'000);
  ASSERT_TRUE(meter.stop().ok());
  const std::size_t first = meter.trace().size();
  EXPECT_GT(first, 0u);
  ASSERT_TRUE(meter.start().ok());
  f.machine->run();
  ASSERT_TRUE(meter.stop().ok());
  EXPECT_GT(meter.trace().size(), 0u);
}

}  // namespace
}  // namespace papirepro::tools
